exception Not_in_simulation
exception Stuck of string

type env = {
  mutable cell_registry : Cell.packed list;  (* newest first *)
  mutable next_cell_id : int;
  mutable step : int;
  tr : Trace.t;
  mutable observers : (step:int -> unit) list;  (* newest first *)
}

let create ?(trace = true) ?trace_capacity () =
  let tr = Trace.create ?capacity:trace_capacity () in
  Trace.set_enabled tr trace;
  { cell_registry = []; next_cell_id = 0; step = 0; tr; observers = [] }

let on_event env f = env.observers <- f :: env.observers

let notify_observers env =
  List.iter (fun f -> f ~step:env.step) (List.rev env.observers)

let make_cell env ?pp ?(bits = 0) name init =
  let c = Cell.make ~id:env.next_cell_id ~name ~bits ~pp init in
  env.next_cell_id <- env.next_cell_id + 1;
  env.cell_registry <- Cell.Packed c :: env.cell_registry;
  c

let now env = env.step
let trace env = env.tr
let total_accesses env = env.step

let note env ~proc text =
  Trace.record env.tr
    { Trace.step = env.step; proc; kind = Trace.Note; cell = text; value = "" }

let reset_counters env =
  List.iter (fun (Cell.Packed c) -> Cell.reset_counters c) env.cell_registry

let space_bits env =
  List.fold_left (fun acc (Cell.Packed c) -> acc + Cell.bits c) 0 env.cell_registry

let cells env = List.rev env.cell_registry

type cell_stat = { cell : string; creads : int; cwrites : int }

let cell_stats env =
  List.rev_map
    (fun (Cell.Packed c) ->
      { cell = Cell.name c; creads = Cell.reads c; cwrites = Cell.writes c })
    env.cell_registry

(* ------------------------------------------------------------------ *)
(* Effects and the scheduler                                            *)
(* ------------------------------------------------------------------ *)

type _ Effect.t +=
  | Sim_read : 'a Cell.t -> 'a Effect.t
  | Sim_write : 'a Cell.t * 'a -> unit Effect.t
  | Sim_self : int Effect.t

let read c =
  try Effect.perform (Sim_read c) with Effect.Unhandled _ -> raise Not_in_simulation

let write c v =
  try Effect.perform (Sim_write (c, v)) with
  | Effect.Unhandled _ -> raise Not_in_simulation

let self () =
  try Effect.perform Sim_self with Effect.Unhandled _ -> raise Not_in_simulation

(* A parked process is waiting for the scheduler to perform its next
   atomic access.  The access is executed when the process is granted a
   step, not when it yielded: this is what makes each labeled statement
   atomic while allowing arbitrary interleaving between statements. *)
type parked =
  | Not_started of (unit -> unit)
  | At_read : 'a Cell.t * ('a, unit) Effect.Deep.continuation -> parked
  | At_write : 'a Cell.t * 'a * (unit, unit) Effect.Deep.continuation -> parked
  | Finished

type stats = { steps : int; switches : int }

let handler_for state i =
  let open Effect.Deep in
  {
    retc = (fun () -> state.(i) <- Finished);
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Sim_read c ->
          Some (fun (k : (a, unit) continuation) -> state.(i) <- At_read (c, k))
        | Sim_write (c, v) ->
          Some (fun (k : (a, unit) continuation) -> state.(i) <- At_write (c, v, k))
        | Sim_self ->
          (* Identity query: resume immediately, no scheduling step. *)
          Some (fun (k : (a, unit) continuation) -> continue k i)
        | _ -> None);
  }

let record_access env ~proc ~kind ~cell ~value =
  Trace.record env.tr { Trace.step = env.step; proc; kind; cell; value }

(* Execute one step of process [i]: run it up to (and including) its
   next shared-memory access, or to completion. *)
let step_proc env state i =
  match state.(i) with
  | Finished -> invalid_arg "step_proc: process already finished"
  | Not_started f -> Effect.Deep.match_with f () (handler_for state i)
  | At_read (c, k) ->
    let v = Cell.peek c in
    Cell.count_read c;
    record_access env ~proc:i ~kind:Trace.Read ~cell:(Cell.name c)
      ~value:(Cell.pp_value c v);
    env.step <- env.step + 1;
    notify_observers env;
    Effect.Deep.continue k v
  | At_write (c, v, k) ->
    Cell.poke c v;
    Cell.count_write c;
    record_access env ~proc:i ~kind:Trace.Write ~cell:(Cell.name c)
      ~value:(Cell.pp_value c v);
    env.step <- env.step + 1;
    notify_observers env;
    Effect.Deep.continue k ()

(* An access happens only when a parked process is stepped, so a
   freshly-started process "consumes" a scheduling turn to reach its
   first access.  To keep scripted schedules intuitive (one script entry
   = one event of that process), stepping a [Not_started] process
   continues stepping it until it parks at an access or finishes. *)
let step_until_event env state i =
  (match state.(i) with
  | Not_started _ ->
    (* Run the process to its first access point; no event yet. *)
    step_proc env state i
  | At_read _ | At_write _ | Finished -> ());
  match state.(i) with
  | Finished -> ()  (* the process performed no shared access at all *)
  | At_read _ | At_write _ ->
    (* Perform the pending access: exactly one event for this turn. *)
    step_proc env state i
  | Not_started _ -> assert false

(* Fault-model input validation: a typo'd process id or a duplicate
   entry silently weakens (or silently strengthens) the intended fault
   scenario, so both are rejected loudly. *)
let validate_faults ~n ~crashes ~stalls =
  let check_proc what p =
    if p < 0 || p >= n then
      invalid_arg
        (Printf.sprintf
           "Sim.run: %s names process %d, but process ids range over 0..%d"
           what p (n - 1))
  in
  let check_dups what ps =
    let sorted = List.sort compare ps in
    let rec scan = function
      | p :: q :: _ when p = q ->
        invalid_arg
          (Printf.sprintf
             "Sim.run: duplicate %s entry for process %d (merge them into \
              one)"
             what p)
      | _ :: rest -> scan rest
      | [] -> ()
    in
    scan sorted
  in
  List.iter
    (fun (p, k) ->
      check_proc "crash" p;
      if k < 0 then
        invalid_arg
          (Printf.sprintf "Sim.run: negative crash point %d for process %d" k p))
    crashes;
  check_dups "crash" (List.map fst crashes);
  List.iter
    (fun (p, at, dur) ->
      check_proc "stall" p;
      if at < 0 then
        invalid_arg
          (Printf.sprintf "Sim.run: negative stall point %d for process %d" at p);
      if dur < 0 then
        invalid_arg
          (Printf.sprintf
             "Sim.run: negative stall duration %d for process %d" dur p))
    stalls;
  check_dups "stall" (List.map (fun (p, _, _) -> p) stalls)

(* A stall is armed until its process has performed [at] events, then
   holds it unscheduled until [dur] further global events have elapsed
   (or until every runnable process is stalled, in which case the
   soonest-resuming stall is released early — global time only advances
   through events, so waiting it out is not an option). *)
type stall_phase = S_armed of { at : int; dur : int } | S_stalled of { since : int; dur : int } | S_released

let run env ?(policy = Schedule.Round_robin) ?(max_steps = 10_000_000)
    ?(crashes = []) ?(stalls = []) procs =
  let n = Array.length procs in
  validate_faults ~n ~crashes ~stalls;
  if n = 0 then { steps = 0; switches = 0 }
  else begin
    let state = Array.map (fun f -> Not_started f) procs in
    let driver = Schedule.driver policy in
    let switches = ref 0 in
    let last = ref (-1) in
    let start_step = env.step in
    (* Halting failures: once process p has performed its quota of
       events it is treated as finished (never scheduled again), its
       current operation left dangling mid-flight. *)
    let events_done = Array.make n 0 in
    let crash_after p = List.assoc_opt p crashes in
    let crashed p =
      match crash_after p with
      | Some k -> events_done.(p) >= k
      | None -> false
    in
    let stall_phase = Array.make n S_released in
    List.iter
      (fun (p, at, dur) -> stall_phase.(p) <- S_armed { at; dur })
      stalls;
    let stalled p =
      match stall_phase.(p) with
      | S_released -> false
      | S_armed { at; dur } ->
        if events_done.(p) < at then false
        else if dur = 0 then begin
          stall_phase.(p) <- S_released;
          false
        end
        else begin
          stall_phase.(p) <- S_stalled { since = env.step; dur };
          true
        end
      | S_stalled { since; dur } ->
        if env.step - since >= dur then begin
          stall_phase.(p) <- S_released;
          false
        end
        else true
    in
    let enabled_ids state =
      let ids = ref [] in
      for i = Array.length state - 1 downto 0 do
        match state.(i) with
        | Finished -> ()
        | _ -> if not (crashed i) && not (stalled i) then ids := i :: !ids
      done;
      Array.of_list !ids
    in
    (* If every runnable process is stalled, no event can occur and the
       resume clocks would never tick: release the stall due soonest
       (lowest [since + dur], ties to the lowest process id). *)
    let release_soonest_stall () =
      let soonest = ref None in
      Array.iteri
        (fun p phase ->
          match (state.(p), phase) with
          | Finished, _ | _, (S_released | S_armed _) -> ()
          | _, S_stalled { since; dur } ->
            if not (crashed p) then begin
              let due = since + dur in
              match !soonest with
              | Some (_, best) when best <= due -> ()
              | _ -> soonest := Some (p, due)
            end)
        stall_phase;
      match !soonest with
      | None -> false
      | Some (p, _) ->
        stall_phase.(p) <- S_released;
        true
    in
    let rec loop () =
      let enabled = enabled_ids state in
      let enabled =
        if Array.length enabled > 0 then enabled
        else if release_soonest_stall () then enabled_ids state
        else enabled
      in
      if Array.length enabled > 0 then begin
        if env.step - start_step > max_steps then
          raise
            (Stuck
               (Printf.sprintf
                  "simulation exceeded %d steps; a process appears to loop \
                   forever (wait-freedom violation?)"
                  max_steps));
        let i = Schedule.pick driver ~enabled ~step:env.step in
        if i <> !last then incr switches;
        last := i;
        let before = env.step in
        step_until_event env state i;
        if env.step > before then events_done.(i) <- events_done.(i) + 1;
        loop ()
      end
    in
    loop ();
    { steps = env.step - start_step; switches = !switches }
  end

let run_solo env ?max_steps f = run env ?max_steps ~policy:Schedule.Round_robin [| f |]

(* ------------------------------------------------------------------ *)
(* Bounded-exhaustive exploration                                       *)
(* ------------------------------------------------------------------ *)

type exploration = { runs : int; exhaustive : bool }

exception Exploration_failure of { schedule : int list; exn : exn }

type choice = { chosen : int; fanout : int; proc : int }

let explore ?(max_runs = 100_000) factory =
  let runs = ref 0 in
  let exhausted = ref false in
  (* [prefix] is the list of choice indices (into the enabled array) to
     replay; beyond it we always take index 0 and record fanouts. *)
  let run_once prefix =
    let env, procs, check = factory () in
    let choices : choice list ref = ref [] in
    let pos = ref 0 in
    let pick ~enabled ~step:_ =
      let idx =
        if !pos < Array.length prefix then prefix.(!pos)
        else 0
      in
      incr pos;
      if idx >= Array.length enabled then
        invalid_arg
          "explore: factory produced a nondeterministic system (replay \
           diverged from recorded schedule)";
      choices :=
        { chosen = idx; fanout = Array.length enabled; proc = enabled.(idx) }
        :: !choices;
      enabled.(idx)
    in
    let schedule_of () = List.rev_map (fun c -> c.proc) !choices in
    (try
       ignore (run env ~policy:(Schedule.Choose pick) ~max_steps:1_000_000 procs);
       check env
     with exn ->
       raise (Exploration_failure { schedule = schedule_of (); exn }));
    List.rev !choices
  in
  (* Compute the next prefix in DFS order, or None when done. *)
  let next_prefix choices =
    let arr = Array.of_list choices in
    let rec scan i =
      if i < 0 then None
      else if arr.(i).chosen + 1 < arr.(i).fanout then begin
        let prefix = Array.make (i + 1) 0 in
        for j = 0 to i - 1 do
          prefix.(j) <- arr.(j).chosen
        done;
        prefix.(i) <- arr.(i).chosen + 1;
        Some prefix
      end
      else scan (i - 1)
    in
    scan (Array.length arr - 1)
  in
  let rec loop prefix =
    if !runs >= max_runs then exhausted := true
    else begin
      let choices = run_once prefix in
      incr runs;
      match next_prefix choices with
      | None -> ()
      | Some p -> loop p
    end
  in
  loop [||];
  { runs = !runs; exhaustive = not !exhausted }

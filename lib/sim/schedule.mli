(** Scheduling policies for the simulator.

    At every step of a run the scheduler must pick one enabled process
    (a process that has not yet returned) to execute its next atomic
    statement.  A policy encapsulates that choice.  All policies are
    deterministic — randomness comes only from an explicit seed — so
    every run is replayable. *)

type t =
  | Round_robin
      (** Cycle through processes in index order, skipping finished
          ones. *)
  | Random of int
      (** Uniform choice among enabled processes, driven by a private
          PRNG seeded with the given seed. *)
  | Starving of int
      (** Adversarial starvation, seeded.  Preferentially grants steps
          to the process that has already received the most (so the
          least-run process is starved and its pending operation spans
          a maximal window of foreign events), with an occasional
          (probability 1/4) step to the most-starved process so every
          operation eventually completes.  This is the scheduler that
          stretches one slow Read across many Writes — the adversary
          the paper's handshake mechanisms exist to defeat. *)
  | Scripted of int array * t
      (** [Scripted (script, fallback)] follows [script] — an array of
          process ids, one per step — and switches to [fallback] when
          the script is exhausted.  Scheduling a finished or unknown
          process id is an error (the script is meant to encode an exact
          scenario, e.g. the paper's Figure 4). *)
  | Choose of (enabled:int array -> step:int -> int)
      (** Fully custom policy: receives the ids of the enabled processes
          (ascending) and the current step index, returns the id of the
          process to run.  Used by the exhaustive explorer. *)

exception Bad_script of string
(** Raised when a [Scripted] policy names a process that is finished or
    out of range. *)

type driver
(** Instantiated policy: owns any mutable state (PRNG, script cursor). *)

val driver : t -> driver

val pick : driver -> enabled:int array -> step:int -> int
(** [pick d ~enabled ~step] returns the id of the process to run next.
    [enabled] is nonempty and sorted ascending. *)

(** A tiny deterministic splitmix64 PRNG, exposed for workload
    generators that need reproducible randomness independent of
    [Stdlib.Random]'s global state. *)
module Prng : sig
  type t

  val make : int -> t
  val int : t -> int -> int
  (** [int t bound] is uniform in [0, bound) — exactly uniform, via
      rejection sampling of the 62-bit draw.  Raises [Invalid_argument]
      if [bound <= 0]. *)

  val bits64 : t -> int64
  val float : t -> float
  (** Uniform in [0, 1). *)
end

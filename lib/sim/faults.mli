(** Faulty-memory injection: composable chaos wrappers over {!Memory.t}.

    The paper's construction is correct {e assuming} its base registers
    are atomic and failures are halting.  This module deliberately
    breaks the first assumption, one deviation at a time, so harnesses
    can confirm that the Shrinking-Lemma oracle actually {e detects}
    executions the theorem does not cover — the same discipline by which
    the register-construction literature separates safe, regular and
    atomic bases.

    A wrapper intercepts the [read]/[write] closures of every cell a
    memory hands out (matching a {!target}) and perturbs them with one
    or more {!kind}s of fault.  All randomness comes from a private
    {!Schedule.Prng} seeded at {!wrap} time and consumed in
    process-execution order, so a faulty run is exactly as replayable as
    a healthy one: same schedule + same fault seed = same run.  [peek]
    (the ghost read) is never perturbed — observers and checkers see the
    true cell contents.

    Benign faults ([Lost_write] … [Regular]) model a register that is
    {e weak} but not adversarial.  The Byzantine kinds model a register
    that actively {e lies}: [Equivocate] shows different values to
    different readers, [Regress] replays arbitrarily old superseded
    values (with whatever timestamp rode inside them), and [Byzantine]
    is a seeded adversary that claims a budget of up to [f] matching
    cells and turns each into a maximally-regressing liar (reads answer
    the initial state, writes are silently discarded).  Claims are made
    in allocation order, concentrating the corruption — the strongest
    placement against an [f]-masking replicated construction.

    Except for [Stutter] (which re-delivers an old write as an {e extra}
    event), faults preserve the number and order of shared-memory
    events: a dropped write still costs its event, it just has no
    effect.  Schedules recorded under one fault set therefore stay
    aligned when faults are removed during counterexample
    minimization. *)

type kind =
  | Lost_write of { prob : float }
      (** Each write is silently dropped with probability [prob]: the
          event occurs but the cell keeps its previous value. *)
  | Stuck_at of { after : int }
      (** The cell accepts its first [after] writes and then freezes
          forever ("stuck-at" its then-current value). *)
  | Stutter of { prob : float }
      (** With probability [prob], a write is followed by a spurious
          re-delivery of the cell's {e previous} value (a duplicated old
          write landing late, as an extra event) — so readers can see
          the new value and then the old one again. *)
  | Corrupt of { prob : float }
      (** Each read independently returns the cell's {e initial} value
          with probability [prob] (a reset glitch) instead of the
          current contents. *)
  | Regular of { window : int }
      (** Regular-register weakening: after a write, the next [window]
          reads of the cell may (coin flip each) still return the
          previous value.  This is precisely the new/old inversion a
          regular (non-atomic) register permits and an atomic one
          forbids. *)
  | Equivocate of { prob : float }
      (** Byzantine equivocation: with probability [prob] a read's
          answer depends on the asking process ([who] at {!wrap} time) —
          odd witnesses are shown the previous value while even ones see
          the current one, so concurrent readers observe different
          register faces. *)
  | Regress of { prob : float }
      (** Byzantine timestamp regression: with probability [prob] a read
          replays a uniformly chosen value from the cell's superseded
          history (bounded depth), i.e. a stale value presented as
          current — any sequence tag embedded in the value regresses
          with it. *)
  | Byzantine of { f : int; prob : float }
      (** Seeded adversary budget: claim up to [f] matching cells (in
          allocation order) and make each an active liar — with
          probability [prob] per access, reads answer the initial state
          and writes are silently discarded.  Colluding claimed cells
          agree on the lie for free, because replicas of a register
          group start identical. *)

type target =
  | All  (** every cell of the wrapped memory *)
  | Exact of string  (** the cell with exactly this name *)
  | Prefix of string  (** every cell whose name starts with this prefix *)
  | Contains of string
      (** every cell whose name contains this substring — the natural
          way to hit one replica group of a replicated construction
          (e.g. ["*.rep0"] for the first base cell of every link of
          {!Registers.Byzantine}) without knowing the register names
          the construction was built over. *)

type injection = { kind : kind; target : target }

type counters = {
  mutable lost : int;  (** writes dropped by [Lost_write] *)
  mutable frozen : int;  (** writes ignored by [Stuck_at] *)
  mutable stuttered : int;  (** duplicate old writes re-delivered *)
  mutable corrupted : int;  (** reads answered with the initial value *)
  mutable stale : int;  (** reads answered with the previous value *)
  mutable equivocated : int;  (** reads whose answer depended on the asker *)
  mutable regressed : int;  (** reads answered from the superseded history *)
  mutable byz_lies : int;  (** claimed-cell reads that lied *)
  mutable byz_drops : int;  (** claimed-cell writes silently discarded *)
  mutable byz_cells : int;  (** cells the Byzantine adversary claimed *)
}

val fired : counters -> int
(** Total faults that actually triggered ([byz_cells] is a head count,
    not a triggered fault, and is excluded). *)

(** {2 Wrapped memories}

    A {!t} is a memory together with the stack of fault layers wrapped
    around it, so failure reports can name exactly which adversary was
    active ({!describe}). *)

type t = {
  mem : Memory.t;
  layers : (injection list * counters) list;
      (** wrap layers, outermost first, each with its own counters *)
  base : string;  (** label of the innermost memory, e.g. ["sim"] *)
}

val stack : ?base:string -> Memory.t -> t
(** A bare stack: no fault layers, [describe] names just the base. *)

val wrap_over : seed:int -> ?who:(unit -> int) -> injection list -> t -> t
(** Push one fault layer onto a stack.  Injections compose: a cell
    matched by several injections suffers all of them.  [who] supplies
    the identity of the reading process for [Equivocate] (e.g.
    [Sim.self]); the default alternates a private witness counter. *)

val counters : t -> counters
(** The outermost layer's counters (fresh zeros for a bare stack). *)

val fired_stack : t -> int
(** {!fired} summed over every layer. *)

val describe : t -> string
(** Name the active fault stack, outermost first, e.g.
    ["byz:1:1 over lost:0.2 over sim"].  Used by campaign failure
    reports so a minimized counterexample says what was lying. *)

val stack_label : layers:injection list list -> base:string -> string
(** {!describe} for a stack that was never built: render the layers
    directly (campaign reports reconstructing the stack from a
    profile). *)

val wrap :
  seed:int -> ?who:(unit -> int) -> injection list -> Memory.t ->
  Memory.t * counters
(** [wrap ~seed injections mem] is [mem] with every matching cell made
    faulty — a one-layer {!wrap_over} returning just the memory and its
    counters.  An empty injection list yields a pass-through wrapper
    (and the counters stay zero). *)

val pp_kind : Format.formatter -> kind -> unit
val pp_injection : Format.formatter -> injection -> unit
val pp_counters : Format.formatter -> counters -> unit

val injection_of_string : string -> (injection, string) result
(** Parse a CLI fault spec: [KIND[@TARGET]] where [KIND] is one of
    [lost:PROB], [stuck:N], [stutter:PROB], [corrupt:PROB],
    [regular:WINDOW], [equivocate:PROB], [regress:PROB], [byz:F:PROB],
    and [TARGET] (default: all cells) is a cell-name prefix — or
    [=NAME] for an exact cell, [*SUB] for a substring match.  E.g.
    ["lost:0.2"], ["regular:2@Y"], ["byz:1:1"], ["regress:1@*.rep0"]. *)

val injection_to_string : injection -> string
(** Inverse of {!injection_of_string} (round-trips). *)

(** Faulty-memory injection: composable chaos wrappers over {!Memory.t}.

    The paper's construction is correct {e assuming} its base registers
    are atomic and failures are halting.  This module deliberately
    breaks the first assumption, one deviation at a time, so harnesses
    can confirm that the Shrinking-Lemma oracle actually {e detects}
    executions the theorem does not cover — the same discipline by which
    the register-construction literature separates safe, regular and
    atomic bases.

    A wrapper intercepts the [read]/[write] closures of every cell a
    memory hands out (matching a {!target}) and perturbs them with one
    or more {!kind}s of fault.  All randomness comes from a private
    {!Schedule.Prng} seeded at {!wrap} time and consumed in
    process-execution order, so a faulty run is exactly as replayable as
    a healthy one: same schedule + same fault seed = same run.  [peek]
    (the ghost read) is never perturbed — observers and checkers see the
    true cell contents.

    Except for [Stutter] (which re-delivers an old write as an {e extra}
    event), faults preserve the number and order of shared-memory
    events: a dropped write still costs its event, it just has no
    effect.  Schedules recorded under one fault set therefore stay
    aligned when faults are removed during counterexample
    minimization. *)

type kind =
  | Lost_write of { prob : float }
      (** Each write is silently dropped with probability [prob]: the
          event occurs but the cell keeps its previous value. *)
  | Stuck_at of { after : int }
      (** The cell accepts its first [after] writes and then freezes
          forever ("stuck-at" its then-current value). *)
  | Stutter of { prob : float }
      (** With probability [prob], a write is followed by a spurious
          re-delivery of the cell's {e previous} value (a duplicated old
          write landing late, as an extra event) — so readers can see
          the new value and then the old one again. *)
  | Corrupt of { prob : float }
      (** Each read independently returns the cell's {e initial} value
          with probability [prob] (a reset glitch) instead of the
          current contents. *)
  | Regular of { window : int }
      (** Regular-register weakening: after a write, the next [window]
          reads of the cell may (coin flip each) still return the
          previous value.  This is precisely the new/old inversion a
          regular (non-atomic) register permits and an atomic one
          forbids. *)

type target =
  | All  (** every cell of the wrapped memory *)
  | Exact of string  (** the cell with exactly this name *)
  | Prefix of string  (** every cell whose name starts with this prefix *)

type injection = { kind : kind; target : target }

type counters = {
  mutable lost : int;  (** writes dropped by [Lost_write] *)
  mutable frozen : int;  (** writes ignored by [Stuck_at] *)
  mutable stuttered : int;  (** duplicate old writes re-delivered *)
  mutable corrupted : int;  (** reads answered with the initial value *)
  mutable stale : int;  (** reads answered with the previous value *)
}

val fired : counters -> int
(** Total faults that actually triggered. *)

val wrap : seed:int -> injection list -> Memory.t -> Memory.t * counters
(** [wrap ~seed injections mem] is [mem] with every matching cell made
    faulty.  Injections compose: a cell matched by several injections
    suffers all of them.  An empty injection list yields a
    pass-through wrapper (and the counters stay zero). *)

val pp_kind : Format.formatter -> kind -> unit
val pp_injection : Format.formatter -> injection -> unit
val pp_counters : Format.formatter -> counters -> unit

val injection_of_string : string -> (injection, string) result
(** Parse a CLI fault spec: [KIND[@TARGET]] where [KIND] is one of
    [lost:PROB], [stuck:N], [stutter:PROB], [corrupt:PROB],
    [regular:WINDOW], and [TARGET] (default: all cells) is a cell-name
    prefix.  E.g. ["lost:0.2"], ["regular:2@Y"]. *)

val injection_to_string : injection -> string
(** Inverse of {!injection_of_string} (round-trips). *)

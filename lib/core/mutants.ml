open Csim

type mutation =
  | None_
  | No_handshake
  | No_write_counter
  | No_second_write
  | Single_collect
  | Mod2_counter
  | Two_value_seq

let all =
  [
    No_handshake; No_write_counter; No_second_write; Single_collect;
    Mod2_counter; Two_value_seq;
  ]

let name = function
  | None_ -> "unmutated"
  | No_handshake -> "no-handshake"
  | No_write_counter -> "no-write-counter"
  | No_second_write -> "no-second-write"
  | Single_collect -> "single-collect"
  | Mod2_counter -> "mod-2-counter"
  | Two_value_seq -> "two-value-seq"

(* The construction, verbatim from Anderson.ml except at the four
   mutation points (marked MUTATION below). *)

type 'a y0 = {
  y_item : 'a Item.t;
  seq : int array array;
  ss : 'a Item.t array;
  wc : int;
}

type 'a t =
  | Base of { cell : 'a Item.t Memory.cell; mutable base_wid : int }
  | Rec of {
      c : int;
      r : int;
      mut : mutation;
      y0 : 'a y0 Memory.cell;
      z : int Memory.cell array;
      rest : 'a Item.t t;
      mutable w_wc : int;
      mutable w_item : 'a Item.t;
      mutable w_seq0 : int array;
      mutable w_seq1 : int array;
      mutable w_ss : 'a Item.t array;
      w_ids : int array;
    }

let mod3 x = x mod 3

let rec build : type a. mutation -> Memory.t -> prefix:string -> readers:int ->
    bits_per_value:int -> init:a array -> a t =
 fun mut mem ~prefix ~readers ~bits_per_value ~init ->
  let c = Array.length init in
  if c = 1 then
    Base
      {
        cell =
          mem.Memory.make ~name:(prefix ^ ".Y0") ~bits:bits_per_value
            (Item.initial init.(0));
        base_wid = 0;
      }
  else begin
    let r = readers in
    let initial_items = Array.map Item.initial init in
    let y0_init =
      {
        y_item = initial_items.(0);
        seq = [| Array.make r 0; Array.make r 0 |];
        ss = Array.copy initial_items;
        wc = 0;
      }
    in
    let y0 =
      mem.Memory.make ~name:(prefix ^ ".Y0")
        ~bits:((4 * r) + (c * bits_per_value) + bits_per_value + 2)
        y0_init
    in
    let z =
      Array.init r (fun j ->
          mem.Memory.make ~name:(Printf.sprintf "%s.Z%d" prefix j) ~bits:2 0)
    in
    let rest =
      build mut mem ~prefix:(prefix ^ "'") ~readers:(r + 1) ~bits_per_value
        ~init:(Array.sub initial_items 1 (c - 1))
    in
    Rec
      {
        c;
        r;
        mut;
        y0;
        z;
        rest;
        w_wc = y0_init.wc;
        w_item = y0_init.y_item;
        w_seq0 = Array.make r 0;
        w_seq1 = Array.copy y0_init.seq.(1);
        w_ss = Array.copy y0_init.ss;
        w_ids = Array.make (c - 1) 0;
      }
  end

let rec scan_items : type a. a t -> reader:int -> a Item.t array =
 fun t ~reader ->
  match t with
  | Base b -> [| b.cell.Memory.read () |]
  | Rec g ->
    let j = reader in
    let x = g.y0.Memory.read () in
    let newseq =
      let f0 = x.seq.(0).(j) and f1 = x.seq.(1).(j) in
      (* MUTATION Two_value_seq: sequence numbers range over 0..1 — a
         fresh value can be impossible (the paper's note at statement 1
         says three values are needed precisely to avoid this). *)
      if g.mut = Two_value_seq then
        if f0 <> 0 && f1 <> 0 then 0 else if f0 <> 1 && f1 <> 1 then 1 else 0
      else begin
        let rec pick v = if v <> f0 && v <> f1 then v else pick (v + 1) in
        pick 0
      end
    in
    (* MUTATION No_handshake: statement 2 skipped. *)
    if g.mut <> No_handshake then g.z.(j).Memory.write newseq;
    let a = g.y0.Memory.read () in
    let b = Item.values (scan_items g.rest ~reader:j) in
    (* MUTATION Single_collect: return (a.val, b) immediately. *)
    if g.mut = Single_collect then Array.append [| a.y_item |] b
    else begin
      let c = g.y0.Memory.read () in
      let d = Item.values (scan_items g.rest ~reader:j) in
      let e = g.y0.Memory.read () in
      (* MUTATION Mod2_counter: the write counter wraps modulo 2. *)
      let wc_trigger =
        if g.mut = Mod2_counter then e.wc = (a.wc + 2) mod 2
        else e.wc = mod3 (a.wc + 2)
      in
      if e.seq.(1).(j) = newseq || wc_trigger then Array.copy e.ss
      else if a.wc = c.wc then Array.append [| a.y_item |] b
      else Array.append [| c.y_item |] d
    end

let rec update : type a. a t -> writer:int -> a -> int =
 fun t ~writer v ->
  match t with
  | Base b ->
    b.base_wid <- b.base_wid + 1;
    b.cell.Memory.write { Item.v; id = b.base_wid };
    b.base_wid
  | Rec g ->
    if writer = 0 then begin
      (* MUTATIONS No_write_counter: wc frozen; Mod2_counter: wraps
         modulo 2. *)
      if g.mut = Mod2_counter then g.w_wc <- (g.w_wc + 1) mod 2
      else if g.mut <> No_write_counter then g.w_wc <- mod3 (g.w_wc + 1);
      g.w_item <- { Item.v; id = g.w_item.Item.id + 1 };
      for n = 0 to g.r - 1 do
        g.w_seq0.(n) <- g.z.(n).Memory.read ()
      done;
      g.y0.Memory.write
        {
          y_item = g.w_item;
          seq = [| Array.copy g.w_seq0; Array.copy g.w_seq1 |];
          ss = Array.copy g.w_ss;
          wc = g.w_wc;
        };
      let y = Item.values (scan_items g.rest ~reader:g.r) in
      g.w_ss <- Array.append [| g.w_item |] y;
      g.w_seq1 <- Array.copy g.w_seq0;
      (* MUTATION No_second_write: statement 7 skipped (the private ss
         and seq[1] updates above are never published). *)
      if g.mut <> No_second_write then
        g.y0.Memory.write
          {
            y_item = g.w_item;
            seq = [| Array.copy g.w_seq0; Array.copy g.w_seq1 |];
            ss = Array.copy g.w_ss;
            wc = g.w_wc;
          };
      g.w_item.Item.id
    end
    else begin
      let i = writer in
      let id = g.w_ids.(i - 1) + 1 in
      g.w_ids.(i - 1) <- id;
      let (_ : int) = update g.rest ~writer:(i - 1) { Item.v; id } in
      id
    end

let create mut mem ~readers ~bits_per_value ~init =
  let t = build mut mem ~prefix:"M" ~readers ~bits_per_value ~init in
  {
    Snapshot.components = Array.length init;
    readers;
    scan_items = (fun ~reader -> scan_items t ~reader);
    update = (fun ~writer v -> update t ~writer v);
    caps = Composite_intf.static_caps;
  }

type verdict = {
  mutant : mutation;
  caught : bool;
  schedules_tried : int;
  counterexample : string option;
}

(* Random-schedule search: depth-first enumeration diverges late in the
   schedule first, which is poor coverage for bugs that need an early
   adversarial interleaving; seeded random schedules find them within a
   few dozen runs. *)
let hunt ?(max_runs = 3_000) ?(writes_per_writer = 4) mut =
  let violation = ref None in
  let tried = ref 0 in
  (try
     for seed = 1 to max_runs do
       incr tried;
       let env = Sim.create ~trace:false () in
       let mem = Memory.of_sim env in
       let init = [| 10; 20 |] in
       let handle = create mut mem ~readers:2 ~bits_per_value:32 ~init in
       let rec_ =
         Snapshot.record ~clock:(fun () -> Sim.now env) ~initial:init handle
       in
       let writer k () =
         for s = 1 to writes_per_writer do
           rec_.Snapshot.rupdate ~writer:k (((k + 1) * 100) + s)
         done
       in
       let reader j () =
         for _ = 1 to 2 do
           ignore (rec_.Snapshot.rscan ~reader:j)
         done
       in
       let (_ : Sim.stats) =
         Sim.run env ~policy:(Schedule.Random seed)
           [| writer 0; writer 1; reader 0; reader 1 |]
       in
       let h = Snapshot.history rec_ in
       match History.Shrinking.check ~equal:Int.equal h with
       | [] -> ()
       | v :: _ ->
         violation := Some (Format.asprintf "%a" History.Shrinking.pp_violation v);
         raise Exit
     done
   with Exit -> ());
  {
    mutant = mut;
    caught = !violation <> None;
    schedules_tried = !tried;
    counterexample = !violation;
  }

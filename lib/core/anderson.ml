open Csim

(* The contents of the register Y[0] (paper: Ytype).  The whole record
   is written in one atomic statement, which is why Y[0]'s width in the
   space recurrence is 4R + CB + B + 2 bits (ids are auxiliary and not
   counted). *)
type 'a y0 = {
  y_item : 'a Item.t;  (* val and (auxiliary) id *)
  seq : int array array;  (* seq[0..1][0..R-1], each 0..2 *)
  ss : 'a Item.t array;  (* ss[0..C-1]: Writer 0's last snapshot *)
  wc : int;  (* modulo-3 write counter *)
}

(* A C/B/1/R register.  [Rec] is the recursive case of Figure 3; its
   [rest] field is the (C-1)-component register Y[1..C-1], which stores
   the *items* written by Writers 1..C-1 — hence the nested (non-regular)
   type ['a Item.t t], traversed below with polymorphic recursion. *)
(* Which branch of Reader statement 8 a scan took (observability only;
   the algorithm itself never reads this). *)
type case =
  | Case_snapshot_seq  (* e.seq[1,j] = newseq: borrowed Writer 0's ss *)
  | Case_snapshot_wc  (* e.wc = a.wc (+) 2: borrowed Writer 0's ss *)
  | Case_ab  (* a.wc = c.wc: returned (a, b) *)
  | Case_cd  (* otherwise: returned (c, d) *)

type 'a t =
  | Base of {
      cell : 'a Item.t Memory.cell;
      mutable base_wid : int;
      base_readers : int;
      base_note : (string -> unit) option;
      base_level : int;
    }
  | Rec of {
      c : int;  (* components at this level *)
      r : int;  (* readers at this level *)
      note : (string -> unit) option;  (* span-marker sink (observability) *)
      level : int;  (* recursion depth: 0 at the outermost register *)
      y0 : 'a y0 Memory.cell;
      z : int Memory.cell array;  (* Z[0..R-1] *)
      rest : 'a Item.t t;  (* Y[1..C-1]: C-1 components, R+1 readers *)
      (* Writer 0's private persistent variables (paper: initialization
         clause of procedure Writer0). *)
      mutable w_wc : int;
      mutable w_item : 'a Item.t;
      mutable w_seq0 : int array;
      mutable w_seq1 : int array;
      mutable w_ss : 'a Item.t array;
      (* Writer i's private persistent item.id, for i in 1..C-1. *)
      w_ids : int array;
      (* Debug: branch taken by each reader's most recent scan at this
         level (one slot per reader; never read by the algorithm). *)
      dbg_case : case option array;
    }

let mod3 x = x mod 3

(* Span markers bracketing one operation at one recursion level, so a
   reconstructed trace exhibits the C -> C-1 nesting.  No-ops (and no
   string allocation) when the register was created without [note]. *)
let span note marker op level =
  match note with
  | None -> ()
  | Some f -> f (marker (Printf.sprintf "%s@%d" op level))

let rec create : type a. Memory.t -> prefix:string ->
    note:(string -> unit) option -> level:int -> readers:int ->
    bits_per_value:int -> init:a array -> a t =
 fun mem ~prefix ~note ~level ~readers ~bits_per_value ~init ->
  let c = Array.length init in
  if c < 1 then invalid_arg "Anderson.create: need at least one component";
  if readers < 1 then invalid_arg "Anderson.create: need at least one reader";
  if c = 1 then
    Base
      {
        cell =
          mem.Memory.make
            ~name:(prefix ^ ".Y0")
            ~bits:bits_per_value (Item.initial init.(0));
        base_wid = 0;
        base_readers = readers;
        base_note = note;
        base_level = level;
      }
  else begin
    let r = readers in
    let initial_items = Array.map Item.initial init in
    let y0_init =
      {
        y_item = initial_items.(0);
        seq = [| Array.make r 0; Array.make r 0 |];
        ss = Array.copy initial_items;
        wc = 0;
      }
    in
    let y0 =
      mem.Memory.make
        ~name:(prefix ^ ".Y0")
        ~bits:((4 * r) + (c * bits_per_value) + bits_per_value + 2)
        y0_init
    in
    let z =
      Array.init r (fun j ->
          mem.Memory.make ~name:(Printf.sprintf "%s.Z%d" prefix j) ~bits:2 0)
    in
    let rest =
      create mem
        ~prefix:(prefix ^ "'")
        ~note ~level:(level + 1) ~readers:(r + 1) ~bits_per_value
        ~init:(Array.sub initial_items 1 (c - 1))
    in
    Rec
      {
        c;
        r;
        note;
        level;
        y0;
        z;
        rest;
        w_wc = y0_init.wc;
        w_item = y0_init.y_item;
        w_seq0 = Array.make r 0;
        w_seq1 = Array.copy y0_init.seq.(1);
        w_ss = Array.copy y0_init.ss;
        w_ids = Array.make (c - 1) 0;
        dbg_case = Array.make r None;
      }
  end

(* procedure Reader(j) — statements 0..9 of Figure 3. *)
let rec scan_items : type a. a t -> reader:int -> a Item.t array =
 fun t ~reader ->
  match t with
  | Base b ->
    span b.base_note Trace.span_begin "scan" b.base_level;
    let v = [| b.cell.Memory.read () |] in
    span b.base_note Trace.span_end "scan" b.base_level;
    v
  | Rec g ->
    let j = reader in
    if j < 0 || j >= g.r then invalid_arg "Anderson.scan_items: bad reader";
    span g.note Trace.span_begin "scan" g.level;
    (* 0: read x := Y[0] *)
    let x = g.y0.Memory.read () in
    (* 1: select newseq differing from both of Writer 0's copies *)
    let newseq =
      let forbidden0 = x.seq.(0).(j) and forbidden1 = x.seq.(1).(j) in
      let rec pick v =
        if v <> forbidden0 && v <> forbidden1 then v else pick (v + 1)
      in
      pick 0
    in
    assert (newseq <= 2);
    (* 2: write Z[j] := newseq *)
    g.z.(j).Memory.write newseq;
    (* 3: read a := Y[0] *)
    let a = g.y0.Memory.read () in
    (* 4: read b := Y[1..C-1] (snapshot of the other Writers) *)
    let b = Item.values (scan_items g.rest ~reader:j) in
    (* 5: read c := Y[0] *)
    let c = g.y0.Memory.read () in
    (* 6: read d := Y[1..C-1] *)
    let d = Item.values (scan_items g.rest ~reader:j) in
    (* 7: read e := Y[0] *)
    let e = g.y0.Memory.read () in
    (* 8: the three-way case analysis *)
    let result =
      if e.seq.(1).(j) = newseq then begin
        g.dbg_case.(j) <- Some Case_snapshot_seq;
        Array.copy e.ss
      end
      else if e.wc = mod3 (a.wc + 2) then begin
        g.dbg_case.(j) <- Some Case_snapshot_wc;
        Array.copy e.ss
      end
      else if a.wc = c.wc then begin
        g.dbg_case.(j) <- Some Case_ab;
        Array.append [| a.y_item |] b
      end
      else begin
        (* c.wc = e.wc *)
        g.dbg_case.(j) <- Some Case_cd;
        Array.append [| c.y_item |] d
      end
    in
    span g.note Trace.span_end "scan" g.level;
    result

(* procedure Writer0(val) — statements 0..8; and procedure
   Writer(i, val) for i >= 1, which performs an (i-1)-Write of the inner
   register with a freshly wrapped item. *)
let rec update : type a. a t -> writer:int -> a -> int =
 fun t ~writer v ->
  match t with
  | Base b ->
    if writer <> 0 then invalid_arg "Anderson.update: bad writer";
    span b.base_note Trace.span_begin "update" b.base_level;
    b.base_wid <- b.base_wid + 1;
    b.cell.Memory.write { Item.v; id = b.base_wid };
    span b.base_note Trace.span_end "update" b.base_level;
    b.base_wid
  | Rec g ->
    if writer < 0 || writer >= g.c then invalid_arg "Anderson.update: bad writer";
    span g.note Trace.span_begin "update" g.level;
    if writer = 0 then begin
      (* 0: wc, item.val, item.id := wc (+) 1, val, item.id + 1 *)
      g.w_wc <- mod3 (g.w_wc + 1);
      g.w_item <- { Item.v; id = g.w_item.Item.id + 1 };
      (* 1, 2.n: read seq[0, n] := Z[n] for each reader *)
      for n = 0 to g.r - 1 do
        g.w_seq0.(n) <- g.z.(n).Memory.read ()
      done;
      (* 3: write Y[0] (first copy: new val/wc/seq[0], old ss/seq[1]) *)
      g.y0.Memory.write
        {
          y_item = g.w_item;
          seq = [| Array.copy g.w_seq0; Array.copy g.w_seq1 |];
          ss = Array.copy g.w_ss;
          wc = g.w_wc;
        };
      (* 4: read y := Y[1..C-1] (snapshot of the other Writers) *)
      let y = Item.values (scan_items g.rest ~reader:g.r) in
      (* 5: ss := item, y[1..C-1] *)
      g.w_ss <- Array.append [| g.w_item |] y;
      (* 6: seq[1] := seq[0] *)
      g.w_seq1 <- Array.copy g.w_seq0;
      (* 7: write Y[0] (second copy: now with fresh ss and seq[1]) *)
      g.y0.Memory.write
        {
          y_item = g.w_item;
          seq = [| Array.copy g.w_seq0; Array.copy g.w_seq1 |];
          ss = Array.copy g.w_ss;
          wc = g.w_wc;
        };
      span g.note Trace.span_end "update" g.level;
      g.w_item.Item.id
    end
    else begin
      (* Writer i, i in 1..C-1: statements 0..2. *)
      let i = writer in
      let id = g.w_ids.(i - 1) + 1 in
      g.w_ids.(i - 1) <- id;
      (* 1: write Y[i] := item — a (i-1)-Write of the inner register. *)
      let (_ : int) = update g.rest ~writer:(i - 1) { Item.v; id } in
      span g.note Trace.span_end "update" g.level;
      id
    end

let components = function Base _ -> 1 | Rec g -> g.c
let readers = function Base b -> b.base_readers | Rec g -> g.r

let last_case ?(reader = 0) = function
  | Base _ -> None
  | Rec g -> g.dbg_case.(reader)

(* Ghost view of the register's current logical contents: the item most
   recently written to each component.  Performs no events (uses cell
   peeks), so observers may call it between any two events to track the
   abstract state — this is how the executable Lemma 2 check works. *)
let rec ghost_items : type a. a t -> a Item.t array = function
  | Base b -> [| b.cell.Memory.peek () |]
  | Rec g ->
    let y0 = g.y0.Memory.peek () in
    Array.append [| y0.y_item |] (Item.values (ghost_items g.rest))

let rec depth_registers : type a. a t -> int = function
  | Base _ -> 1
  | Rec g -> 1 + Array.length g.z + depth_registers g.rest

let create ?note mem ~readers ~bits_per_value ~init =
  create mem ~prefix:"A" ~note ~level:0 ~readers ~bits_per_value ~init

let handle t =
  {
    Snapshot.components = components t;
    readers = readers t;
    scan_items = (fun ~reader -> scan_items t ~reader);
    update = (fun ~writer v -> update t ~writer v);
    caps = Composite_intf.static_caps;
  }

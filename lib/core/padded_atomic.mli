(** Cache-line-padded atomic references.

    OCaml boxes every [Atomic.t] as a one-field heap block (16 bytes
    with its header), so [Array.init n (fun _ -> Atomic.make v)]
    typically lays four atomics on one 64-byte cache line.  Under real
    parallelism that is {e false sharing}: a writer bumping its own
    counter invalidates the line under three innocent neighbours, and
    the coherence traffic — not the algorithm — becomes the hot path.
    Experiment E20's contended-increment microbench measures exactly
    this (the effect needs at least two cores to exist at all; on a
    single-core host both layouts cost the same).

    [make] allocates the atomic inside a block stretched to
    {!words} fields, so two padded atomics can never share a cache
    line no matter how the allocator packs them.  The type is exposed
    as an equality with ['a Atomic.t]: every [Atomic] operation
    (get/set/exchange/compare_and_set/fetch_and_add) works on a padded
    atomic unchanged, because they all address field 0 of the block.
    This is the standard pre-5.2 OCaml idiom (what
    [Atomic.make_contended] does natively from OCaml 5.2 on). *)

type 'a t = 'a Atomic.t

val line_bytes : int
(** Assumed cache-line size (64). *)

val words : int
(** Fields per padded block: enough that consecutive blocks' field 0s
    are more than {!line_bytes} apart. *)

val make : 'a -> 'a t
(** A padded atomic holding [v].  Field 0 is the live value; the
    remaining fields are immediate filler the GC skips over. *)

val array : int -> 'a -> 'a t array
(** [array n v]: [n] padded atomics, each initialized to [v] (no
    sharing — [n] separate blocks, unlike [Array.make]). *)

val init : int -> (int -> 'a) -> 'a t array

val size_words : 'a t -> int
(** Heap-block size of a (padded) atomic, in fields — [>= words] for
    values built here, [1] for a plain [Atomic.make].  Exposed so tests
    can pin the layout contract. *)

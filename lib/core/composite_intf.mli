(** The one handle interface every composite-register object satisfies.

    A composite register presents [C] components to [R] declared Reader
    processes; a Scan ([scan_items]) returns all [C] components with
    their auxiliary ids, and [update ~writer v] performs a Write and
    returns the auxiliary id assigned to it.  Every construction in
    this repository — the paper's recursive construction, the Afek
    et al. baseline, the double collects, the multi-writer wrapper
    ({!Multi_writer.handle}) and the serving layer ([Serve.handle]) —
    is reachable through a value of this record type, so campaigns,
    meters, stress harnesses and benchmarks are written once, against
    this interface.

    Conventions:
    - [update ~writer:k v] performs a Write of [v] through write port
      [k] and returns the auxiliary id ([phi] of the operation).  For
      single-writer objects, port [k] writes component [k]; wrappers
      with several writers per component (e.g. [Multi_writer.handle])
      expose [W] ports per component and document the port-to-component
      mapping.
    - [scan_items ~reader:j] performs a Read as Reader [j], returning
      all [C] components.
    - Handles are not thread-safe by themselves: one process per write
      port, one per reader index, exactly as the paper's procedures are
      resident to processes.

    [Snapshot.t] is an alias of this type (the record is re-exported
    there), so existing code using [Composite.Snapshot.t] and new code
    using [Composite_intf.t] interoperate freely. *)

(** {2 Capabilities}

    Beyond the four operations, a handle advertises what it {e can do}
    as data, so campaigns, the edge server and the CLI discover
    reconfigurability instead of special-casing backend names.

    Every handle carries a {!caps} record:
    - [epoch ()] is the configuration epoch the object is currently
      serving.  Static constructions (the paper's recursion, Afek
      et al., the double collects, …) are forever in epoch [0]; an
      elastic object ([Serve.handle]) increments it at each completed
      reconfiguration.  Epochs are monotone and start at [0].
    - [reconfigure], when present, atomically moves the object to a new
      shard count {e while operations are in flight}: a Scan that
      observes the new epoch observes all migrated state, and every
      accounting identity holds per epoch.  [None] means the layout is
      fixed at creation — the common case, and the default
      ({!static_caps}). *)
type caps = {
  epoch : unit -> int;
      (** Current configuration epoch (monotone, 0 at creation). *)
  reconfigure : (shards:int -> unit) option;
      (** Online reconfiguration to [shards] shards, or [None] for
          static constructions. *)
}

val static_caps : caps
(** The capability record of every fixed-layout construction:
    [epoch () = 0] forever, no [reconfigure]. *)

type 'a t = {
  components : int;
  readers : int;
  scan_items : reader:int -> 'a Item.t array;
  update : writer:int -> 'a -> int;
  caps : caps;
}

val components : 'a t -> int
val readers : 'a t -> int
val scan_items : 'a t -> reader:int -> 'a Item.t array
val update : 'a t -> writer:int -> 'a -> int

val scan : 'a t -> reader:int -> 'a array
(** [scan_items] with the auxiliary ids stripped: the public Read. *)

val caps : 'a t -> caps

val epoch : 'a t -> int
(** [caps t .epoch ()]. *)

val reconfigurable : 'a t -> bool
(** Whether [caps t .reconfigure] is present. *)

val reconfigure : 'a t -> shards:int -> unit
(** Invoke the capability; raises [Invalid_argument] on a static
    handle (check {!reconfigurable} first). *)

(** First-class-module spelling of the same contract, for code that
    wants to abstract the handle representation itself rather than use
    the record directly. *)
module type HANDLE = sig
  type elt
  type handle

  val components : handle -> int
  val readers : handle -> int
  val scan_items : handle -> reader:int -> elt Item.t array
  val update : handle -> writer:int -> elt -> int
end

open Csim

(* Same contract as [Memory.atomic], but every register lives in its
   own cache line: the constructions' cells are written by different
   domains, and with plain [Atomic.make] several of them share a line
   (see {!Padded_atomic}). *)
let padded_memory () =
  let make : type a. name:string -> bits:int -> a -> a Memory.cell =
   fun ~name:_ ~bits:_ init ->
    let a = Padded_atomic.make init in
    {
      Memory.read = (fun () -> Atomic.get a);
      write = (fun v -> Atomic.set a v);
      peek = (fun () -> Atomic.get a);
    }
  in
  { Memory.make }

let anderson ~readers ~init =
  Anderson.handle
    (Anderson.create (padded_memory ()) ~readers ~bits_per_value:64 ~init)

let afek ~init = Afek.create (padded_memory ()) ~bits_per_value:64 ~init

let unsafe_collect ~init =
  Double_collect.create_unsafe (padded_memory ()) ~bits_per_value:64 ~init

let multi_writer ~components ~writers_per_component ~readers ~init =
  let factory =
    {
      Snapshot.make_sw =
        (fun ~readers:r ~init ->
          ignore r;
          Afek.create (padded_memory ()) ~bits_per_value:64 ~init);
    }
  in
  Multi_writer.create factory ~components ~writers_per_component ~readers ~init

let locked ~readers ~init =
  if readers < 1 then invalid_arg "Multicore.locked: readers must be >= 1";
  let mutex = Mutex.create () in
  let c = Array.length init in
  let store = Array.map Item.initial init in
  let wids = Array.make c 0 in
  let scan_items ~reader:_ =
    Mutex.lock mutex;
    let view = Array.copy store in
    Mutex.unlock mutex;
    view
  in
  let update ~writer v =
    Mutex.lock mutex;
    wids.(writer) <- wids.(writer) + 1;
    let id = wids.(writer) in
    store.(writer) <- { Item.v; id };
    Mutex.unlock mutex;
    id
  in
  { Snapshot.components = c; readers; scan_items; update;
    caps = Composite_intf.static_caps }

let tick_clock () =
  let counter = Padded_atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1

type stress_config = { writer_ops : int; reader_ops : int; readers : int }

type recorded_op =
  | Rec_write of { proc : int; comp : int; value : int; id : int; inv : int; res : int }
  | Rec_read of { proc : int; values : int array; ids : int array; inv : int; res : int }

let stress ?(reader_pace = fun () -> ()) ~config ~init ~handle () =
  let c = handle.Snapshot.components in
  if Array.length init <> c then invalid_arg "Multicore.stress: arity mismatch";
  let clock = tick_clock () in
  let log_mutex = Mutex.create () in
  let log : recorded_op list ref = ref [] in
  let push op =
    Mutex.lock log_mutex;
    log := op :: !log;
    Mutex.unlock log_mutex
  in
  let writer_body k () =
    for seq = 1 to config.writer_ops do
      let v = (k * 1000) + seq in
      let inv = clock () in
      let id = handle.Snapshot.update ~writer:k v in
      let res = clock () in
      push (Rec_write { proc = config.readers + k; comp = k; value = v; id; inv; res })
    done
  in
  let reader_body j () =
    for _ = 1 to config.reader_ops do
      reader_pace ();
      let inv = clock () in
      let items = handle.Snapshot.scan_items ~reader:j in
      let res = clock () in
      push
        (Rec_read
           {
             proc = j;
             values = Item.values items;
             ids = Item.ids items;
             inv;
             res;
           })
    done
  in
  let domains =
    List.init c (fun k -> Domain.spawn (writer_body k))
    @ List.init config.readers (fun j -> Domain.spawn (reader_body j))
  in
  List.iter Domain.join domains;
  let coll = History.Snapshot_history.collector ~initial:init in
  List.iter
    (fun op ->
      match op with
      | Rec_write { proc; comp; value; id; inv; res } ->
        History.Snapshot_history.record_write coll ~proc ~comp ~value ~id ~inv
          ~res
      | Rec_read { proc; values; ids; inv; res } ->
        History.Snapshot_history.record_read coll ~proc ~values ~ids ~inv ~res)
    (List.rev !log);
  History.Snapshot_history.history coll

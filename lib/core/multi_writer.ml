type 'a slot_value = { sv : 'a; tag : int }

type 'a t = {
  c : int;
  w : int;  (* writers per component *)
  r : int;  (* pure readers *)
  base : 'a slot_value Snapshot.t;  (* C * W slots *)
}

let slot t ~comp ~widx = (comp * t.w) + widx

let create factory ~components ~writers_per_component ~readers ~init =
  if Array.length init <> components then
    invalid_arg "Multi_writer.create: arity mismatch";
  if components < 1 || writers_per_component < 1 || readers < 0 then
    invalid_arg "Multi_writer.create: bad dimensions";
  let c = components and w = writers_per_component in
  let base_init =
    Array.init (c * w) (fun s -> { sv = init.(s / w); tag = 0 })
  in
  let base =
    factory.Snapshot.make_sw ~readers:(readers + (c * w)) ~init:base_init
  in
  { c; w; r = readers; base }

let components t = t.c
let writers_per_component t = t.w

(* Auxiliary id of a Write: strictly monotone in (tag, widx) and >= 1
   for real Writes (which always have tag >= 1).  Tag 0 means "never
   written": the virtual initial Write, whose id is 0 by convention. *)
let encode_id t ~tag ~widx = if tag = 0 then 0 else (tag * t.w) + widx + 1

(* Per component, the winning slot is the one with the largest
   (tag, widx) pair; widx order breaks ties between concurrent Writes. *)
let select t (slots : 'a slot_value Item.t array) ~comp =
  let best = ref 0 in
  for widx = 1 to t.w - 1 do
    let cur = (slots.(slot t ~comp ~widx)).Item.v in
    let b = (slots.(slot t ~comp ~widx:!best)).Item.v in
    if cur.tag > b.tag || (cur.tag = b.tag && widx > !best) then best := widx
  done;
  let v = (slots.(slot t ~comp ~widx:!best)).Item.v in
  { Item.v = v.sv; id = encode_id t ~tag:v.tag ~widx:!best }

let scan_items t ~reader =
  if reader < 0 || reader >= t.r then invalid_arg "Multi_writer.scan_items";
  let slots = t.base.Snapshot.scan_items ~reader in
  Array.init t.c (fun comp -> select t slots ~comp)

let update t ~comp ~widx v =
  if comp < 0 || comp >= t.c then invalid_arg "Multi_writer.update: bad comp";
  if widx < 0 || widx >= t.w then invalid_arg "Multi_writer.update: bad widx";
  (* This writer's reader slot in the substrate. *)
  let reader = t.r + slot t ~comp ~widx in
  let slots = t.base.Snapshot.scan_items ~reader in
  let max_tag = ref 0 in
  for i = 0 to t.w - 1 do
    let sv = (slots.(slot t ~comp ~widx:i)).Item.v in
    if sv.tag > !max_tag then max_tag := sv.tag
  done;
  let tag = !max_tag + 1 in
  let (_ : int) =
    t.base.Snapshot.update ~writer:(slot t ~comp ~widx) { sv = v; tag }
  in
  encode_id t ~tag ~widx

(* The unified-handle view: write port p drives (comp, widx) =
   (p / W, p mod W), so ports group by component in slot order. *)
let handle t =
  {
    Composite_intf.components = t.c;
    readers = t.r;
    scan_items = (fun ~reader -> scan_items t ~reader);
    update =
      (fun ~writer v ->
        if writer < 0 || writer >= t.c * t.w then
          invalid_arg "Multi_writer.handle: bad write port";
        update t ~comp:(writer / t.w) ~widx:(writer mod t.w) v);
    caps = Composite_intf.static_caps;
  }

(* ------------------------------------------------------------------ *)
(* Recording                                                            *)
(* ------------------------------------------------------------------ *)

type 'a recorded = {
  mw : 'a t;
  coll : 'a History.Snapshot_history.collector;
  mscan : reader:int -> 'a array;
  mupdate : comp:int -> widx:int -> 'a -> unit;
}

let record ~clock ~initial mw =
  if Array.length initial <> mw.c then
    invalid_arg "Multi_writer.record: arity mismatch";
  let coll = History.Snapshot_history.collector ~initial in
  let mscan ~reader =
    let inv = clock () in
    let items = scan_items mw ~reader in
    let res = clock () in
    History.Snapshot_history.record_read coll ~proc:reader
      ~values:(Item.values items) ~ids:(Item.ids items) ~inv ~res;
    Item.values items
  in
  let mupdate ~comp ~widx v =
    let inv = clock () in
    let id = update mw ~comp ~widx v in
    let res = clock () in
    History.Snapshot_history.record_write coll
      ~proc:(mw.r + slot mw ~comp ~widx)
      ~comp ~value:v ~id ~inv ~res
  in
  { mw; coll; mscan; mupdate }

let history r = History.Snapshot_history.history r.coll

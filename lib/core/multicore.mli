(** Real-parallel instances of the constructions, on OCaml domains.

    Each register of the algorithms becomes one [Atomic.t] holding an
    immutable value — a hardware atomic register strictly stronger than
    the MRSW primitive the constructions assume — so the very same
    algorithm code (written against {!Csim.Memory.t}) runs unmodified
    and wait-free on parallel domains.

    This module also provides the lock-based snapshot used as the
    blocking comparator of experiment E7 and a small stress harness that
    runs writer and reader domains and returns the recorded history for
    offline checking. *)

val padded_memory : unit -> Csim.Memory.t
(** {!Csim.Memory.atomic} with every register on its own cache line
    ({!Padded_atomic}); the substrate of every construction below and
    of the serving layer's outer register. *)

val anderson : readers:int -> init:'a array -> 'a Snapshot.t
val afek : init:'a array -> 'a Snapshot.t
val unsafe_collect : init:'a array -> 'a Snapshot.t

val multi_writer :
  components:int -> writers_per_component:int -> readers:int ->
  init:'a array -> 'a Multi_writer.t
(** Multi-writer composite register on [Atomic.t] registers (substrate:
    the Afek-style snapshot, whose polynomial scans suit the [C * W]
    slot count). *)

val locked : readers:int -> init:'a array -> 'a Snapshot.t
(** Mutex-protected array: scans and updates serialize.  Linearizable
    but blocking — the E7 baseline the wait-free constructions are
    compared against.  The mutex supports any number of readers, but
    the handle reports the [readers] the caller declares (rather than a
    [max_int] sentinel) so code sizing per-reader state from
    [Snapshot.readers] stays honest. *)

val tick_clock : unit -> (unit -> int)
(** A fetch-and-add logical clock.  Timestamps taken before and after an
    operation bound its real-time interval, so the interval order they
    induce is a sound under-approximation of real-time precedence — as
    required for linearizability checking of parallel runs. *)

type stress_config = {
  writer_ops : int;  (** operations per writer domain *)
  reader_ops : int;  (** operations per reader domain *)
  readers : int;
}

val stress :
  ?reader_pace:(unit -> unit) ->
  config:stress_config -> init:int array -> handle:int Snapshot.t ->
  unit -> int History.Snapshot_history.t
(** Runs [C] writer domains (writer [k] writes values [k*1000 + seq])
    and [config.readers] reader domains concurrently, recording every
    operation with {!tick_clock} timestamps.  Returns the merged
    history.

    [reader_pace] (default: none) runs on the reader domain before each
    scan's invocation timestamp is taken.  Handles whose scans are much
    cheaper than their updates (e.g. cached serving-layer reads) finish
    all their scans before the first write completes, leaving nothing
    concurrent to check; a pacing hook that waits for writer progress
    restores genuine overlap. *)

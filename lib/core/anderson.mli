(** The paper's C/B/1/R composite register construction (Section 4,
    Figure 3).

    The construction is recursive: a [C]-component register for [R]
    readers is built from
    - [Y[0]]: one multi-reader single-writer atomic register written by
      Writer 0, holding the record
      [(val, id, seq[0..1][0..R-1], ss[0..C-1], wc)];
    - [Y[1..C-1]]: a [(C-1)]-component composite register with [R+1]
      readers (the construction recursing; Writer 0 is its extra
      reader), storing {!Item.t} values — the items written by Writers
      [1..C-1];
    - [Z[0..R-1]]: one single-writer atomic register per Reader, holding
      a modulo-3 sequence number.

    Every labeled statement of Figure 3 that accesses shared memory maps
    to exactly one access of the underlying {!Csim.Memory.t}, so when the
    memory is simulator-backed, statement interleavings, traces and
    access counts are exactly those of the paper's model.  The auxiliary
    [id] fields are carried verbatim (never branched on).

    The base case [C = 1] is a single MRSW atomic register.

    Fidelity notes:
    - Reader statement 1 picks [newseq] as the smallest value in
      [{0,1,2}] differing from both of Writer 0's copies — a
      deterministic instance of the paper's [select].
    - Writer 0's private variables ([wc], [item.id], [seq], [ss]) and
      Writer [i]'s [item.id] persist across invocations and are
      initialized exactly per the paper's [initialization] clauses. *)

type 'a t
(** A [C/B/1/R] composite register holding values of type ['a]. *)

val create :
  ?note:(string -> unit) ->
  Csim.Memory.t ->
  readers:int ->
  bits_per_value:int ->
  init:'a array ->
  'a t
(** [create mem ~readers ~bits_per_value ~init] builds the register with
    [C = Array.length init] components, all initialized per the paper's
    Initial Writes assumption (every [Y[j].id = 0]).  [bits_per_value]
    is the paper's [B], used only for space accounting of the allocated
    registers.

    [note] (default: none) receives operation-span markers at every
    recursion level: each scan / update at depth [d] (0 = outermost) is
    bracketed by [Csim.Trace.span_begin "scan@d"] / matching [span_end]
    (likewise ["update@d"]), so a reconstructed trace exhibits the
    [C -> C-1] nesting — a [C]-component scan contains two scans of the
    inner [(C-1)]-component register, recursively.  Pass
    [Obs.Span.emitter env] to record the markers into the simulator
    trace.  When omitted, instrumentation costs nothing (no string
    allocation). *)

val components : 'a t -> int
val readers : 'a t -> int

val scan_items : 'a t -> reader:int -> 'a Item.t array
(** The Reader procedure (statements 0–9).  Must be invoked serially per
    reader index. *)

val update : 'a t -> writer:int -> 'a -> int
(** The Writer procedures: [writer = 0] runs Writer 0 (statements 0–8),
    [writer = k >= 1] runs Writer [k] — which wraps the value in a fresh
    item and performs a [(k-1)]-Write of the inner register.  Returns
    the auxiliary id of the Write ([phi_k]).  Must be invoked serially
    per writer index. *)

val handle : 'a t -> 'a Snapshot.t
(** Package as a generic {!Snapshot.t}. *)

val depth_registers : 'a t -> int
(** Number of underlying atomic registers allocated (all recursion
    levels): [R + 2] at each [Rec] level plus the base register.  Used
    by space-accounting tests. *)

(** {2 Observability}

    Ghost facilities for tests and the executable proof lemmas.  None of
    these perform shared-memory events and none are ever consulted by
    the algorithm itself. *)

type case =
  | Case_snapshot_seq
      (** [e.seq[1,j] = newseq]: returned Writer 0's embedded snapshot
          (the Figure 4 (a) situation). *)
  | Case_snapshot_wc
      (** [e.wc = a.wc ⊕ 2]: returned Writer 0's embedded snapshot (the
          Figure 4 (b) situation). *)
  | Case_ab  (** [a.wc = c.wc]: returned [(a.val, b)]. *)
  | Case_cd  (** otherwise: returned [(c.val, d)]. *)

val last_case : ?reader:int -> 'a t -> case option
(** Which branch of Reader statement 8 the given reader's most recent
    scan took, at the outermost recursion level (default reader 0). *)

val ghost_items : 'a t -> 'a Item.t array
(** The register's current logical contents — the item most recently
    written to each component — read with cell peeks (no events).
    Sampling this after every event yields the sequence of states the
    paper's Lemma 2 and property (12) quantify over; see
    [Workload.Lemmas]. *)

open Csim

type 'a reg = {
  cells : 'a Item.t Memory.cell array;
  wids : int array;  (* per-writer private id counters *)
}

let make mem ~bits_per_value ~init ~prefix =
  let cells =
    Array.mapi
      (fun k v ->
        mem.Memory.make
          ~name:(Printf.sprintf "%s.C%d" prefix k)
          ~bits:bits_per_value (Item.initial v))
      init
  in
  { cells; wids = Array.make (Array.length init) 0 }

let collect reg = Array.map (fun c -> c.Memory.read ()) reg.cells

let update reg ~writer v =
  if writer < 0 || writer >= Array.length reg.cells then
    invalid_arg "Double_collect.update: bad writer";
  reg.wids.(writer) <- reg.wids.(writer) + 1;
  let id = reg.wids.(writer) in
  reg.cells.(writer).Memory.write { Item.v; id };
  id

let create_unsafe mem ~bits_per_value ~init =
  let reg = make mem ~bits_per_value ~init ~prefix:"DC1" in
  {
    Snapshot.components = Array.length init;
    readers = max_int;
    scan_items = (fun ~reader:_ -> collect reg);
    update = (fun ~writer v -> update reg ~writer v);
    caps = Composite_intf.static_caps;
  }

let create_repeated mem ~bits_per_value ~init =
  let reg = make mem ~bits_per_value ~init ~prefix:"DC2" in
  let same a b =
    Array.length a = Array.length b
    && Array.for_all2 (fun (x : _ Item.t) (y : _ Item.t) -> x.Item.id = y.Item.id) a b
  in
  let rec scan_until last =
    let next = collect reg in
    if same last next then next else scan_until next
  in
  {
    Snapshot.components = Array.length init;
    readers = max_int;
    scan_items = (fun ~reader:_ -> scan_until (collect reg));
    update = (fun ~writer v -> update reg ~writer v);
    caps = Composite_intf.static_caps;
  }

(** Multi-writer composite registers from single-writer ones.

    The paper's companion result ([3], discussed in Sections 1 and 5) is
    that composite registers with [W] writers per component can be built
    from single-writer atomic registers.  We realize the combined claim
    by the classical snapshot-based reduction (see DESIGN.md,
    substitution 3):

    - the substrate is a single-writer composite register with [C * W]
      components, one {e slot} per (component, writer) pair, storing
      [(value, tag)] pairs;
    - a Write of component [k] by writer [w] scans the substrate, picks
      [tag = 1 + max] of the tags in component [k]'s slots, and writes
      [(value, tag)] to its own slot [(k, w)];
    - a Read scans the substrate and, per component, returns the value
      with the lexicographically largest [(tag, writer-index)].

    Tags obtained from atomic scans order causally-separated Writes
    correctly, and the writer index breaks ties between concurrent ones,
    so the result is linearizable; the auxiliary id exposed for the
    Shrinking checker is [tag * W + w + 1], which is strictly monotone
    in [(tag, w)]. *)

type 'a t

type 'a slot_value = { sv : 'a; tag : int }

val create :
  Snapshot.factory -> components:int -> writers_per_component:int ->
  readers:int -> init:'a array -> 'a t
(** The factory builds the substrate single-writer register; callers
    wrap {!Anderson.create} or {!Afek.create} in it.  [readers] is the
    number of (pure) reader processes; the substrate is created with
    [readers + components * writers_per_component] reader slots because
    every Write also scans. *)

val components : 'a t -> int
val writers_per_component : 'a t -> int

val scan_items : 'a t -> reader:int -> 'a Item.t array
(** Read: values of all [C] components, ids as described above. *)

val update : 'a t -> comp:int -> widx:int -> 'a -> int
(** Write by writer [widx] (in [0 .. W-1]) to component [comp]; returns
    the auxiliary id. *)

val handle : 'a t -> 'a Composite_intf.t
(** The unified-handle view.  The handle advertises [C] components and
    [C * W] write ports: port [p] writes component [p / W] as writer
    [p mod W], so generic harnesses drive a multi-writer object through
    the same interface as single-writer ones. *)

(** {2 Recording} *)

type 'a recorded = {
  mw : 'a t;
  coll : 'a History.Snapshot_history.collector;
  mscan : reader:int -> 'a array;
  mupdate : comp:int -> widx:int -> 'a -> unit;
}

val record : clock:(unit -> int) -> initial:'a array -> 'a t -> 'a recorded
val history : 'a recorded -> 'a History.Snapshot_history.t

(* An ['a Atomic.t] is represented at runtime as a one-field mutable
   block, and every [Atomic] primitive addresses field 0.  Allocating a
   wider block and treating it as the atomic therefore changes nothing
   but the footprint: field 0 is the value, fields 1.. are immediate
   filler.  [Obj.new_block] initializes all fields to [()], so the
   filler is GC-safe from the moment the block exists; we then install
   the real initial value in field 0.

   [words] = 15 makes the whole block 16 words = 128 bytes with its
   header, so consecutive field 0s are 128 bytes apart — a full line of
   separation even for CPUs whose prefetcher pulls adjacent line
   pairs. *)

type 'a t = 'a Atomic.t

let line_bytes = 64
let words = 15

let make (v : 'a) : 'a t =
  let b = Obj.new_block 0 words in
  Obj.set_field b 0 (Obj.repr v);
  (Obj.magic b : 'a t)

let array n v = Array.init n (fun _ -> make v)
let init n f = Array.init n (fun i -> make (f i))
let size_words (a : 'a t) = Obj.size (Obj.repr a)

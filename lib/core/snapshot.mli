(** The composite register object interface.

    A single-writer composite register (the paper's [C/B/1/R] object)
    has [C] components, each owned by exactly one Writer process, and
    [R] Reader processes.  All implementations in this library — the
    paper's construction, the Afek-et-al. baseline, the naive double
    collects — are exposed as a {!t} handle so that tests, checkers and
    benchmarks are implementation-generic.

    Conventions:
    - [update ~writer:k v] performs a k-Write of input value [v] and
      returns the auxiliary id assigned to it ([phi_k] of the
      operation);
    - [scan ~reader:j] performs a Read returning all [C] component
      values;
    - [scan_items] additionally exposes the auxiliary ids
      ([phi_k] for each [k]), which the harness records for checking.

    Handles are not thread-safe by themselves: the caller must respect
    the access pattern (one process per writer index, one per reader
    index), exactly as the paper's procedures are resident to
    processes.

    The record is an alias of {!Composite_intf.t} — the unified handle
    interface every composite object in the repository satisfies — so
    generic code written against either module accepts handles from
    both. *)

type 'a t = 'a Composite_intf.t = {
  components : int;
  readers : int;
  scan_items : reader:int -> 'a Item.t array;
  update : writer:int -> 'a -> int;
  caps : Composite_intf.caps;
      (** Capability record ({!Composite_intf.caps}):
          [Composite_intf.static_caps] for every fixed-layout
          construction. *)
}

val scan : 'a t -> reader:int -> 'a array
(** [scan_items] with the auxiliary ids stripped: the public Read. *)

type factory = {
  make_sw : 'a. readers:int -> init:'a array -> 'a t;
      (** Builds a fresh single-writer composite register; higher-level
          objects ({!Multi_writer}, the [Prmw] library) are parametric
          in which construction they sit on. *)
}

val name_check : 'a t -> reader:int -> writer:int -> unit
(** Validate indices; raises [Invalid_argument]. *)

(** {2 Recording wrapper}

    Wraps a handle so every operation is recorded into a
    {!History.Snapshot_history.collector} with simulator timestamps.
    Intended for single-threaded simulation runs. *)

type 'a recorded = {
  handle : 'a t;
  coll : 'a History.Snapshot_history.collector;
  rscan : reader:int -> 'a array;  (** recorded Read *)
  rupdate : writer:int -> 'a -> unit;  (** recorded Write *)
}

val record :
  ?note:(string -> unit) ->
  clock:(unit -> int) ->
  initial:'a array ->
  'a t ->
  'a recorded
(** [record ~clock ~initial handle]: [clock] supplies invocation and
    response timestamps (use [fun () -> Csim.Sim.now env] in
    simulations, or a fetch-and-add counter on multicore).

    [note] (default: none) receives operation-span markers
    ([Csim.Trace.span_begin "scan"] before each Scan starts, matching
    [span_end] after it returns, likewise ["update"]) — pass
    [Obs.Span.emitter env] to record them into the simulator trace for
    span reconstruction and Chrome-trace export. *)

val history : 'a recorded -> 'a History.Snapshot_history.t

type 'a t = 'a Composite_intf.t = {
  components : int;
  readers : int;
  scan_items : reader:int -> 'a Item.t array;
  update : writer:int -> 'a -> int;
  caps : Composite_intf.caps;
}

let scan t ~reader = Item.values (t.scan_items ~reader)

type factory = { make_sw : 'a. readers:int -> init:'a array -> 'a t }

let name_check t ~reader ~writer =
  if reader < -1 || reader >= t.readers then
    invalid_arg (Printf.sprintf "reader index %d out of range" reader);
  if writer < -1 || writer >= t.components then
    invalid_arg (Printf.sprintf "writer index %d out of range" writer)

type 'a recorded = {
  handle : 'a t;
  coll : 'a History.Snapshot_history.collector;
  rscan : reader:int -> 'a array;
  rupdate : writer:int -> 'a -> unit;
}

let record ?note ~clock ~initial handle =
  if Array.length initial <> handle.components then
    invalid_arg "Snapshot.record: initial array arity mismatch";
  let coll = History.Snapshot_history.collector ~initial in
  let span marker name =
    match note with None -> () | Some f -> f (marker name)
  in
  let rscan ~reader =
    let inv = clock () in
    span Csim.Trace.span_begin "scan";
    let items = handle.scan_items ~reader in
    span Csim.Trace.span_end "scan";
    let res = clock () in
    History.Snapshot_history.record_read coll ~proc:reader
      ~values:(Item.values items) ~ids:(Item.ids items) ~inv ~res;
    Item.values items
  in
  let rupdate ~writer v =
    let inv = clock () in
    span Csim.Trace.span_begin "update";
    let id = handle.update ~writer v in
    span Csim.Trace.span_end "update";
    let res = clock () in
    (* Reader and Writer processes are distinct; offset writer process
       ids past the readers' so diagnostics can tell them apart. *)
    History.Snapshot_history.record_write coll ~proc:(handle.readers + writer)
      ~comp:writer ~value:v ~id ~inv ~res
  in
  { handle; coll; rscan; rupdate }

let history r = History.Snapshot_history.history r.coll

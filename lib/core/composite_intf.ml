type caps = {
  epoch : unit -> int;
  reconfigure : (shards:int -> unit) option;
}

let static_caps = { epoch = (fun () -> 0); reconfigure = None }

type 'a t = {
  components : int;
  readers : int;
  scan_items : reader:int -> 'a Item.t array;
  update : writer:int -> 'a -> int;
  caps : caps;
}

let components t = t.components
let readers t = t.readers
let scan_items t ~reader = t.scan_items ~reader
let update t ~writer v = t.update ~writer v
let scan t ~reader = Item.values (t.scan_items ~reader)
let caps t = t.caps
let epoch t = t.caps.epoch ()
let reconfigurable t = t.caps.reconfigure <> None

let reconfigure t ~shards =
  match t.caps.reconfigure with
  | None -> invalid_arg "Composite_intf.reconfigure: handle is static"
  | Some f -> f ~shards

module type HANDLE = sig
  type elt
  type handle

  val components : handle -> int
  val readers : handle -> int
  val scan_items : handle -> reader:int -> elt Item.t array
  val update : handle -> writer:int -> elt -> int
end

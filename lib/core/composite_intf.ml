type 'a t = {
  components : int;
  readers : int;
  scan_items : reader:int -> 'a Item.t array;
  update : writer:int -> 'a -> int;
}

let components t = t.components
let readers t = t.readers
let scan_items t ~reader = t.scan_items ~reader
let update t ~writer v = t.update ~writer v
let scan t ~reader = Item.values (t.scan_items ~reader)

module type HANDLE = sig
  type elt
  type handle

  val components : handle -> int
  val readers : handle -> int
  val scan_items : handle -> reader:int -> elt Item.t array
  val update : handle -> writer:int -> elt -> int
end

open Csim

type 'a slot = {
  item : 'a Item.t;
  view : 'a Item.t array;  (* the writer's embedded scan *)
}

type 'a reg = { cells : 'a slot Memory.cell array; wids : int array }

let collect reg = Array.map (fun c -> c.Memory.read ()) reg.cells

let ids_equal (a : 'a slot array) (b : 'a slot array) =
  Array.for_all2 (fun x y -> x.item.Item.id = y.item.Item.id) a b

(* One scan: double collect until stable, borrowing the embedded view of
   any writer seen moving twice.  Termination: each of the C writers can
   be caught moving at most twice, so at most C+1 double collects. *)
let scan reg =
  let c = Array.length reg.cells in
  let moved = Array.make c false in
  let rec loop c1 =
    let c2 = collect reg in
    if ids_equal c1 c2 then Array.map (fun s -> s.item) c2
    else begin
      let borrowed = ref None in
      Array.iteri
        (fun i s1 ->
          if s1.item.Item.id <> c2.(i).item.Item.id then
            if moved.(i) then begin
              if !borrowed = None then borrowed := Some c2.(i).view
            end
            else moved.(i) <- true)
        c1;
      match !borrowed with Some view -> Array.copy view | None -> loop c2
    end
  in
  loop (collect reg)

let update reg ~writer v =
  if writer < 0 || writer >= Array.length reg.cells then
    invalid_arg "Afek.update: bad writer";
  (* Embedded scan first, then publish it together with the new item. *)
  let view = scan reg in
  reg.wids.(writer) <- reg.wids.(writer) + 1;
  let id = reg.wids.(writer) in
  let item = { Item.v; id } in
  reg.cells.(writer).Memory.write { item; view };
  id

let create mem ~bits_per_value ~init =
  let c = Array.length init in
  if c < 1 then invalid_arg "Afek.create: need at least one component";
  let slot_bits = bits_per_value + 64 + (c * (bits_per_value + 64)) in
  let cells =
    Array.mapi
      (fun k v ->
        let item = Item.initial v in
        let view = Array.map Item.initial init in
        mem.Memory.make ~name:(Printf.sprintf "AF.C%d" k) ~bits:slot_bits
          { item; view })
      init
  in
  let reg = { cells; wids = Array.make c 0 } in
  {
    Snapshot.components = c;
    readers = max_int;
    scan_items = (fun ~reader:_ -> scan reg);
    update = (fun ~writer v -> update reg ~writer v);
    caps = Composite_intf.static_caps;
  }

let scan_bound ~components = (components + 2) * components

(** A deterministic simulated asynchronous message-passing system.

    The system has [n] {e server replicas} (passive: they only react to
    messages) and any number of {e client processes} (active: the
    algorithm code, run as effect-handled coroutines exactly like
    {!Csim.Sim} processes).  All communication is point-to-point
    messages; there is no shared memory.  Messages in flight form a
    single multiset and the scheduler — driven by an ordinary
    {!Csim.Schedule.t} policy — picks which pending event happens next,
    so message {e reordering and delay} fall out of the schedule
    ([Random] explores them, [Scripted] replays an exact interleaving)
    while {e loss} and {e replica crashes} are explicit injected faults:

    - [loss]: each transmission is independently dropped with the given
      probability (drawn from a private seeded PRNG, so runs replay);
    - [crashes]: [(r, k)] crash-stops replica [r] after it has handled
      its first [k] messages; later deliveries to [r] are discarded.
      At most a minority of replicas may crash ([f < n/2]), matching
      the ABD emulation's liveness requirement.

    Determinism: a fixed [(seed, policy, crashes, loss)] yields a
    bit-identical run — same delivery order, same counters, same
    events — which is what campaign sharding and counterexample replay
    rely on. *)

exception Not_in_network
(** Raised by {!send}/{!recv}/{!self} outside {!run}. *)

exception Stuck of string
(** The run exceeded its step budget without completing — e.g. a
    protocol waiting on a quorum that loss keeps destroying. *)

type payload = ..
(** Protocol messages.  Extensible so each protocol (e.g. {!Abd})
    declares its own constructors against one network type. *)

type addr = Client of int | Replica of int

type ctx = { trace : int; span : int }
(** Causal context stamped on messages: the trace id of the top-level
    operation and the span id of the protocol step that sent the
    message (ids from an {!Obs.Causal} collector).  Replica replies
    inherit the request's context, so every message of an ABD phase —
    including retransmits and late acks — carries the phase's identity
    end to end. *)

type packet = {
  src : addr;
  dst : addr;
  seq : int;
  payload : payload;
  lamport : int;
  ctx : ctx option;
}
(** [seq] is a globally unique, monotonically increasing transmission
    id — the canonical order used to enumerate pending deliveries.
    [lamport] is the sender's Lamport clock after the send tick (each
    node ticks on send; receivers advance to [max local witnessed + 1]
    at delivery), giving every message a happens-before-consistent
    timestamp independent of the delivery schedule. *)

type handler = replica:int -> src:int -> payload -> (int * payload) list
(** Replica logic: given the replica id, the sending client and the
    message, return the replies to send as [(client, payload)] pairs.
    Handlers run atomically at delivery. *)

type env

(** {1 Byzantine replicas}

    A Byzantine replica does not merely stop: it {e lies}.  Each faulty
    replica is assigned one misbehavior flavor, applied by the protocol
    handler (see {!Abd}) at every delivery, and every individual lie is
    accounted per replica in a {!byz_stat} so campaign reports can say
    exactly which replica misbehaved how often. *)

type byz_flavor =
  | Forge_ts
      (** Acknowledge writes without storing them, and answer reads
          with a forged far-future timestamp on a stale value — the
          poisoning lie, since honest readers write the forged pair
          back. *)
  | Stale_replies
      (** Store honestly but always answer reads with the register's
          initial value — a maximally regressing timestamp. *)
  | Equivocate
      (** Answer honestly to even-numbered clients and with the initial
          value to odd-numbered ones: different quorum faces for
          different readers. *)
  | Mute  (** Never reply — a silent Byzantine, counted against the
          liveness minority like a crash. *)

val byz_flavor_to_string : byz_flavor -> string
val byz_flavor_of_string : string -> byz_flavor option
(** Round-tripping names ["forge"], ["stale"], ["equivocate"], ["mute"]
    — the forms counterexample scripts and CLI flags use. *)

type byz_stat = {
  mutable forged : int;  (** forged-timestamp replies and dropped stores *)
  mutable stale_served : int;  (** initial-value replies by [Stale_replies] *)
  mutable equivocations : int;  (** lying faces shown by [Equivocate] *)
  mutable muted : int;  (** deliveries swallowed by [Mute] *)
}

val byz_misbehaviors : byz_stat -> int
(** Total individual lies of one replica. *)

val create :
  ?loss:float ->
  ?crashes:(int * int) list ->
  ?byzantine:(int * byz_flavor) list ->
  ?log:bool ->
  replicas:int ->
  seed:int ->
  unit ->
  env
(** [loss] defaults to [0.]; must be in [[0, 1)].  [crashes] is a list
    of [(replica, after_k_messages)] crash-stop faults, validated to
    name distinct in-range replicas.  [byzantine] assigns misbehavior
    flavors to distinct replicas (disjoint from [crashes]).  Liveness
    validation: crash-stops plus [Mute] Byzantines together must stay a
    minority ([f < n/2]); lying flavors do answer, so they do not count
    against it.  [log] (default [false]) records the full event
    timeline for {!Timeline} export.  [seed] drives the loss PRNG only;
    scheduling randomness comes from the policy passed to {!run}. *)

val replicas : env -> int

val byz_flavor : env -> int -> byz_flavor option
(** The misbehavior assigned to this replica, if any. *)

val byz_stat : env -> int -> byz_stat
(** This replica's (mutable) misbehavior account — protocol handlers
    bump it as they lie. *)

val byz_stats : env -> (int * byz_flavor * byz_stat) list
(** Exact per-replica misbehavior accounting, in assignment order. *)

val now : env -> int
(** The network clock: delivery and timeout events each advance it by
    one.  Used as the logical clock when recording operation
    histories. *)

val lamport : env -> addr -> int
(** This node's current Lamport clock (0 before its first event). *)

val set_context : env -> client:int -> ctx option -> unit
(** Set (or with [None] clear) the causal context stamped on this
    client's subsequent sends.  Protocol layers (see [Abd]) set it
    around each phase; it changes nothing but the metadata carried on
    packets, so traced and untraced runs schedule identically. *)

val context : env -> client:int -> ctx option

val set_handler : env -> handler -> unit

val crashed : env -> int -> bool
(** Has this replica passed its crash point? *)

(** {1 Client operations} (only inside {!run}) *)

val send : int -> payload -> unit
(** Asynchronous send to a replica; never blocks, may be lost. *)

val recv : unit -> packet option
(** Block until some message addressed to this client is delivered.
    [None] is a timeout: the scheduler proves no message can currently
    arrive (nothing deliverable is in flight and every other client is
    also blocked), so the protocol should retransmit. *)

val self : unit -> int
(** This client's id. *)

(** {1 Running} *)

type stats = {
  steps : int;
  sent : int;       (** transmissions attempted (including lost) *)
  delivered : int;  (** handled by a live replica or consumed by [recv] *)
  lost : int;       (** dropped by the loss fault at transmission *)
  to_crashed : int; (** delivered to a crashed replica, discarded *)
  expired : int;    (** addressed to a client that had already returned *)
  timeouts : int;
}

val run :
  env ->
  ?policy:Csim.Schedule.t ->
  ?max_steps:int ->
  (unit -> unit) array ->
  stats
(** Run the client processes to completion over this network, then
    drain remaining replica-bound packets (so late requests are still
    handled and message counts are exact).  The scheduler's enabled set
    at each step is the canonical action list — unstarted clients in id
    order, then pending deliveries in [seq] order — and the policy
    picks an {e index} into it, which is what [Scripted] replay scripts
    record.  Raises {!Stuck} after [max_steps] scheduling events
    (default 200_000) without completion. *)

val totals : env -> stats
(** Absolute counters since [create] (a superset of any one run). *)

(** {1 Event log} (only when [create ~log:true]) *)

type event_kind =
  | Ev_send
  | Ev_deliver
  | Ev_loss
  | Ev_to_crashed
  | Ev_expire
  | Ev_timeout

type event = {
  at : int;
  kind : event_kind;
  e_src : addr;
  e_dst : addr;
  e_seq : int;
  e_payload : payload option;
  e_lamport : int;
      (** send-side events carry the packet's Lamport stamp, deliveries
          the receiver's clock after the merge, timeouts the waiting
          client's tick *)
  e_ctx : ctx option;  (** the packet's causal context, if any *)
}

val events : env -> event list
(** Oldest first. *)

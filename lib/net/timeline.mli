(** Chrome trace-event export of a network run's message timeline.

    Renders the event log of a [Sim.create ~log:true] environment for
    [chrome://tracing] / Perfetto: one process group for clients and
    one for replicas, one track per endpoint; every delivery is a
    1-tick ["X"] slice on the receiving track, matching ["s"]/["f"]
    flow events (keyed by the packet [seq]) draw the send→deliver
    arrows, and losses / deliveries-to-crashed-replicas / expirations /
    timeouts appear as instant events.  Every message event's args
    carry its Lamport stamp and, when present, the causal [(trace,
    span)] context from the packet.  Timestamps are network-clock ticks
    reported as microseconds.

    With [?causal] (the collector fed to [Abd.create ~causal] and used
    as the note sink), the same file additionally contains the
    reconstructed span trees — composite Scan/Update note spans, ABD op
    and phase spans as nested ["X"] slices, per-replica rpc and backoff
    waits as async spans — on the client tracks, i.e. the same
    coordinates the flow arrows depart from: one merged causal trace. *)

val of_env :
  ?pp:(Sim.payload -> string) -> ?causal:Obs.Causal.t -> Sim.env -> Obs.Json.t
(** [pp] names messages (e.g. {!Abd.payload_label}); defaults to
    ["msg"]. *)

val export :
  path:string ->
  ?pp:(Sim.payload -> string) ->
  ?causal:Obs.Causal.t ->
  Sim.env ->
  unit
(** Write {!of_env} to [path]. *)

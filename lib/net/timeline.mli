(** Chrome trace-event export of a network run's message timeline.

    Renders the event log of a [Sim.create ~log:true] environment for
    [chrome://tracing] / Perfetto: one process group for clients and
    one for replicas, one track per endpoint; every delivery is a
    1-tick ["X"] slice on the receiving track, matching ["s"]/["f"]
    flow events (keyed by the packet [seq]) draw the send→deliver
    arrows, and losses / deliveries-to-crashed-replicas / expirations /
    timeouts appear as instant events.  Timestamps are network-clock
    ticks reported as microseconds. *)

val of_env : ?pp:(Sim.payload -> string) -> Sim.env -> Obs.Json.t
(** [pp] names messages (e.g. {!Abd.payload_label}); defaults to
    ["msg"]. *)

val export : path:string -> ?pp:(Sim.payload -> string) -> Sim.env -> unit
(** Write {!of_env} to [path]. *)

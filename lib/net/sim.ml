exception Not_in_network
exception Stuck of string

type payload = ..

type addr = Client of int | Replica of int

type ctx = { trace : int; span : int }

type packet = {
  src : addr;
  dst : addr;
  seq : int;
  payload : payload;
  lamport : int;  (* sender's Lamport clock after the send tick *)
  ctx : ctx option;  (* causal trace/span the message belongs to *)
}

type handler = replica:int -> src:int -> payload -> (int * payload) list

type counters = {
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable to_crashed : int;
  mutable expired : int;
  mutable timeouts : int;
}

type byz_flavor = Forge_ts | Stale_replies | Equivocate | Mute

let byz_flavor_to_string = function
  | Forge_ts -> "forge"
  | Stale_replies -> "stale"
  | Equivocate -> "equivocate"
  | Mute -> "mute"

let byz_flavor_of_string = function
  | "forge" -> Some Forge_ts
  | "stale" -> Some Stale_replies
  | "equivocate" -> Some Equivocate
  | "mute" -> Some Mute
  | _ -> None

type byz_stat = {
  mutable forged : int;
  mutable stale_served : int;
  mutable equivocations : int;
  mutable muted : int;
}

let byz_misbehaviors s = s.forged + s.stale_served + s.equivocations + s.muted

type stats = {
  steps : int;
  sent : int;
  delivered : int;
  lost : int;
  to_crashed : int;
  expired : int;
  timeouts : int;
}

type event_kind =
  | Ev_send
  | Ev_deliver
  | Ev_loss
  | Ev_to_crashed
  | Ev_expire
  | Ev_timeout

type event = {
  at : int;
  kind : event_kind;
  e_src : addr;
  e_dst : addr;
  e_seq : int;
  e_payload : payload option;
  e_lamport : int;
  e_ctx : ctx option;
}

type env = {
  n_replicas : int;
  loss : float;
  crashes : (int * int) list;
  byzantine : (int * byz_flavor) list;
  byz : byz_stat array;  (* per replica, indexed by replica id *)
  prng : Csim.Schedule.Prng.t;
  mutable handler : handler option;
  mutable flight : packet list;  (* ascending seq: sends append *)
  mutable next_seq : int;
  mutable step : int;
  ctr : counters;
  log : bool;
  mutable events : event list;  (* newest first *)
  handled : int array;  (* per replica: messages processed so far *)
  clocks : (addr, int) Hashtbl.t;  (* per-node Lamport clocks *)
  client_ctx : (int, ctx) Hashtbl.t;  (* current causal ctx per client *)
}

let create ?(loss = 0.0) ?(crashes = []) ?(byzantine = []) ?(log = false)
    ~replicas ~seed () =
  if replicas < 1 then invalid_arg "Net.Sim.create: need at least one replica";
  if loss < 0.0 || loss >= 1.0 then
    invalid_arg "Net.Sim.create: loss probability must be in [0, 1)";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (r, k) ->
      if r < 0 || r >= replicas then
        invalid_arg
          (Printf.sprintf "Net.Sim.create: crash names replica %d (of %d)" r
             replicas);
      if k < 0 then
        invalid_arg "Net.Sim.create: crash point must be non-negative";
      if Hashtbl.mem seen r then
        invalid_arg
          (Printf.sprintf "Net.Sim.create: duplicate crash for replica %d" r);
      Hashtbl.add seen r ())
    crashes;
  List.iter
    (fun (r, _) ->
      if r < 0 || r >= replicas then
        invalid_arg
          (Printf.sprintf
             "Net.Sim.create: byzantine names replica %d (of %d)" r replicas);
      if Hashtbl.mem seen r then
        invalid_arg
          (Printf.sprintf
             "Net.Sim.create: replica %d is both crashed and byzantine (or \
              named twice)"
             r);
      Hashtbl.add seen r ())
    byzantine;
  (* ABD liveness needs a majority of replicas that answer: crash-stops
     and mute Byzantines both silence a replica for good. *)
  let silent =
    List.length crashes
    + List.length (List.filter (fun (_, fl) -> fl = Mute) byzantine)
  in
  if 2 * silent >= replicas then
    invalid_arg
      (Printf.sprintf
         "Net.Sim.create: %d silent replica(s) among %d — need f < n/2" silent
         replicas);
  {
    n_replicas = replicas;
    loss;
    crashes;
    byzantine;
    byz =
      Array.init replicas (fun _ ->
          { forged = 0; stale_served = 0; equivocations = 0; muted = 0 });
    prng = Csim.Schedule.Prng.make seed;
    handler = None;
    flight = [];
    next_seq = 0;
    step = 0;
    ctr =
      {
        sent = 0;
        delivered = 0;
        lost = 0;
        to_crashed = 0;
        expired = 0;
        timeouts = 0;
      };
    log;
    events = [];
    handled = Array.make replicas 0;
    clocks = Hashtbl.create 16;
    client_ctx = Hashtbl.create 8;
  }

let replicas env = env.n_replicas
let now env = env.step
let set_handler env h = env.handler <- Some h
let events env = List.rev env.events

let lamport env node =
  Option.value (Hashtbl.find_opt env.clocks node) ~default:0

let tick env node witnessed =
  let c = max (lamport env node) witnessed + 1 in
  Hashtbl.replace env.clocks node c;
  c

let set_context env ~client ctx =
  match ctx with
  | None -> Hashtbl.remove env.client_ctx client
  | Some c -> Hashtbl.replace env.client_ctx client c

let context env ~client = Hashtbl.find_opt env.client_ctx client

let crashed env r =
  match List.assoc_opt r env.crashes with
  | None -> false
  | Some k -> env.handled.(r) >= k

let byz_flavor env r = List.assoc_opt r env.byzantine
let byz_stat env r = env.byz.(r)

let byz_stats env =
  List.map (fun (r, fl) -> (r, fl, env.byz.(r))) env.byzantine

let totals env =
  {
    steps = env.step;
    sent = env.ctr.sent;
    delivered = env.ctr.delivered;
    lost = env.ctr.lost;
    to_crashed = env.ctr.to_crashed;
    expired = env.ctr.expired;
    timeouts = env.ctr.timeouts;
  }

let record env kind ~src ~dst ~seq ~payload ?(lamport = 0) ?ctx () =
  if env.log then
    env.events <-
      { at = env.step; kind; e_src = src; e_dst = dst; e_seq = seq;
        e_payload = payload; e_lamport = lamport; e_ctx = ctx }
      :: env.events

(* ------------------------------------------------------------------ *)
(* Client-side effects                                                *)
(* ------------------------------------------------------------------ *)

type _ Effect.t +=
  | Net_send : int * payload -> unit Effect.t
  | Net_recv : packet option Effect.t
  | Net_self : int Effect.t

let send r p =
  try Effect.perform (Net_send (r, p))
  with Effect.Unhandled _ -> raise Not_in_network

let recv () =
  try Effect.perform Net_recv with Effect.Unhandled _ -> raise Not_in_network

let self () =
  try Effect.perform Net_self with Effect.Unhandled _ -> raise Not_in_network

(* ------------------------------------------------------------------ *)
(* Transport                                                          *)
(* ------------------------------------------------------------------ *)

let transmit env ~src ~dst ?ctx p =
  (* Causal context: explicit (replica replies inherit the request's),
     else the sending client's current context, if any. *)
  let ctx =
    match (ctx, src) with
    | (Some _ as c), _ -> c
    | None, Client c -> context env ~client:c
    | None, Replica _ -> None
  in
  let lamport = tick env src 0 in
  let seq = env.next_seq in
  env.next_seq <- seq + 1;
  env.ctr.sent <- env.ctr.sent + 1;
  record env Ev_send ~src ~dst ~seq ~payload:(Some p) ~lamport ?ctx ();
  if env.loss > 0.0 && Csim.Schedule.Prng.float env.prng < env.loss then begin
    env.ctr.lost <- env.ctr.lost + 1;
    record env Ev_loss ~src ~dst ~seq ~payload:(Some p) ~lamport ?ctx ()
  end
  else env.flight <- env.flight @ [ { src; dst; seq; payload = p; lamport; ctx } ]

(* ------------------------------------------------------------------ *)
(* Scheduler                                                          *)
(* ------------------------------------------------------------------ *)

type parked =
  | Not_started of (unit -> unit)
  | At_recv of (packet option, unit) Effect.Deep.continuation
  | Finished

type action = A_start of int | A_deliver of packet

let run env ?(policy = Csim.Schedule.Round_robin) ?(max_steps = 200_000) procs =
  (match env.handler with
  | None ->
    invalid_arg
      "Net.Sim.run: no replica handler installed (e.g. via Net.Abd.create)"
  | Some _ -> ());
  let nc = Array.length procs in
  let state = Array.map (fun f -> Not_started f) procs in
  let start_step = env.step in
  let c0 = totals env in
  let driver = Csim.Schedule.driver policy in
  let main_handler i : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> state.(i) <- Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Net_send (r, p) ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if r < 0 || r >= env.n_replicas then
                  invalid_arg
                    (Printf.sprintf
                       "Net.Sim.send: replica %d out of range 0..%d" r
                       (env.n_replicas - 1));
                transmit env ~src:(Client i) ~dst:(Replica r) p;
                Effect.Deep.continue k ())
          | Net_recv ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                state.(i) <- At_recv k)
          | Net_self ->
            Some (fun (k : (a, unit) Effect.Deep.continuation) ->
                Effect.Deep.continue k i)
          | _ -> None);
    }
  in
  (* Packets addressed to a client that already returned can never be
     consumed; expire them so they stop showing up as enabled actions. *)
  let purge () =
    env.flight <-
      List.filter
        (fun p ->
          match p.dst with
          | Client j when (match state.(j) with Finished -> true | _ -> false)
            ->
            env.ctr.expired <- env.ctr.expired + 1;
            record env Ev_expire ~src:p.src ~dst:p.dst ~seq:p.seq
              ~payload:(Some p.payload) ~lamport:p.lamport ?ctx:p.ctx ();
            false
          | _ -> true)
        env.flight
  in
  let deliver p =
    env.step <- env.step + 1;
    match p.dst with
    | Replica r ->
      if crashed env r then begin
        env.ctr.to_crashed <- env.ctr.to_crashed + 1;
        record env Ev_to_crashed ~src:p.src ~dst:p.dst ~seq:p.seq
          ~payload:(Some p.payload) ~lamport:p.lamport ?ctx:p.ctx ()
      end
      else begin
        env.handled.(r) <- env.handled.(r) + 1;
        env.ctr.delivered <- env.ctr.delivered + 1;
        let lamport = tick env p.dst p.lamport in
        record env Ev_deliver ~src:p.src ~dst:p.dst ~seq:p.seq
          ~payload:(Some p.payload) ~lamport ?ctx:p.ctx ();
        let src =
          match p.src with Client c -> c | Replica _ -> assert false
        in
        let handler = Option.get env.handler in
        List.iter
          (fun (c, reply) ->
            if c < 0 || c >= nc then
              invalid_arg
                (Printf.sprintf
                   "Net.Sim: replica %d replied to unknown client %d" r c);
            (* Replies join the causal trace of the request. *)
            transmit env ~src:(Replica r) ~dst:(Client c) ?ctx:p.ctx reply)
          (handler ~replica:r ~src p.payload)
      end
    | Client j -> (
      env.ctr.delivered <- env.ctr.delivered + 1;
      let lamport = tick env p.dst p.lamport in
      record env Ev_deliver ~src:p.src ~dst:p.dst ~seq:p.seq
        ~payload:(Some p.payload) ~lamport ?ctx:p.ctx ();
      match state.(j) with
      | At_recv k -> Effect.Deep.continue k (Some p)
      | _ -> assert false)
  in
  let check_budget () =
    if env.step - start_step > max_steps then
      raise
        (Stuck
           (Printf.sprintf
              "network made no progress after %d steps (%d packets in \
               flight, %d timeouts)"
              max_steps (List.length env.flight)
              (env.ctr.timeouts - c0.timeouts)))
  in
  let deliverable p =
    match p.dst with
    | Replica _ -> true
    | Client j -> ( match state.(j) with At_recv _ -> true | _ -> false)
  in
  let rec loop () =
    purge ();
    let starts = ref [] in
    for i = nc - 1 downto 0 do
      match state.(i) with
      | Not_started _ -> starts := A_start i :: !starts
      | _ -> ()
    done;
    let deliveries =
      List.filter_map
        (fun p -> if deliverable p then Some (A_deliver p) else None)
        env.flight
    in
    let actions = Array.of_list (!starts @ deliveries) in
    if Array.length actions = 0 then begin
      (* Quiescent: either everything returned, or every live client is
         blocked in [recv] with nothing deliverable — fire a timeout so
         protocols can retransmit. *)
      let waiting = ref (-1) in
      for j = nc - 1 downto 0 do
        match state.(j) with At_recv _ -> waiting := j | _ -> ()
      done;
      if !waiting >= 0 then begin
        check_budget ();
        env.step <- env.step + 1;
        env.ctr.timeouts <- env.ctr.timeouts + 1;
        let lamport = tick env (Client !waiting) 0 in
        record env Ev_timeout ~src:(Client !waiting) ~dst:(Client !waiting)
          ~seq:(-1) ~payload:None ~lamport ();
        let j = !waiting in
        (match state.(j) with
        | At_recv k -> Effect.Deep.continue k None
        | _ -> assert false);
        loop ()
      end
    end
    else begin
      check_budget ();
      let enabled = Array.init (Array.length actions) Fun.id in
      let idx = Csim.Schedule.pick driver ~enabled ~step:env.step in
      (match actions.(idx) with
      | A_start i -> (
        match state.(i) with
        | Not_started f -> Effect.Deep.match_with f () (main_handler i)
        | _ -> assert false)
      | A_deliver p ->
        env.flight <- List.filter (fun q -> q.seq <> p.seq) env.flight;
        deliver p);
      loop ()
    end
  in
  loop ();
  (* Drain the backlog still addressed to replicas so every request is
     eventually handled (late acks to returned clients expire).  This
     makes per-operation message counts exact: a run with no faults
     sends precisely the ABD bound. *)
  let rec flush () =
    purge ();
    match
      List.find_opt
        (fun p -> match p.dst with Replica _ -> true | Client _ -> false)
        env.flight
    with
    | None -> ()
    | Some p ->
      env.flight <- List.filter (fun q -> q.seq <> p.seq) env.flight;
      deliver p;
      flush ()
  in
  flush ();
  purge ();
  let c1 = totals env in
  {
    steps = env.step - start_step;
    sent = c1.sent - c0.sent;
    delivered = c1.delivered - c0.delivered;
    lost = c1.lost - c0.lost;
    to_crashed = c1.to_crashed - c0.to_crashed;
    expired = c1.expired - c0.expired;
    timeouts = c1.timeouts - c0.timeouts;
  }

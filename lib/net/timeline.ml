open Obs

let addr_pid = function Sim.Client _ -> 0 | Sim.Replica _ -> 1
let addr_tid = function Sim.Client j -> j | Sim.Replica r -> r

let addr_label = function
  | Sim.Client j -> Printf.sprintf "client %d" j
  | Sim.Replica r -> Printf.sprintf "replica %d" r

let of_env ?(pp = fun (_ : Sim.payload) -> "msg") ?causal env =
  let events = ref [] in
  let emit e = events := e :: !events in
  let common ~name ~ph ~ts ~addr extra =
    Json.Obj
      ([
         ("name", Json.Str name);
         ("ph", Json.Str ph);
         ("ts", Json.Int ts);
         ("pid", Json.Int (addr_pid addr));
         ("tid", Json.Int (addr_tid addr));
       ]
      @ extra)
  in
  let instant ~name ~ts ~addr args =
    emit
      (common ~name ~ph:"i" ~ts ~addr
         ([ ("s", Json.Str "t") ] @ args))
  in
  let tracks = Hashtbl.create 16 in
  let see addr = Hashtbl.replace tracks (addr_pid addr, addr_tid addr) addr in
  let flow ~ph ~name ~ts ~addr ~seq =
    emit
      (common ~name ~ph ~ts ~addr
         (("id", Json.Int seq)
         :: ("cat", Json.Str "msg")
         :: (if ph = "f" then [ ("bp", Json.Str "e") ] else [])))
  in
  List.iter
    (fun (e : Sim.event) ->
      see e.Sim.e_src;
      see e.Sim.e_dst;
      let name =
        match e.Sim.e_payload with Some p -> pp p | None -> "timeout"
      in
      let seq_arg =
        ( "args",
          Json.Obj
            (("seq", Json.Int e.Sim.e_seq)
            :: ("lamport", Json.Int e.Sim.e_lamport)
            :: (match e.Sim.e_ctx with
               | None -> []
               | Some c ->
                 [
                   ("trace", Json.Int c.Sim.trace);
                   ("span", Json.Int c.Sim.span);
                 ])) )
      in
      match e.Sim.kind with
      | Sim.Ev_send ->
        (* Flow start on the sender's track; the matching deliver (if
           any) draws the arrow.  With [causal] in play the send sits on
           the same (pid, tid) as the sending phase's span, so the arrow
           departs from inside the span tree. *)
        flow ~ph:"s" ~name ~ts:e.Sim.at ~addr:e.Sim.e_src ~seq:e.Sim.e_seq
      | Sim.Ev_deliver ->
        flow ~ph:"f" ~name ~ts:e.Sim.at ~addr:e.Sim.e_dst ~seq:e.Sim.e_seq;
        emit
          (common ~name ~ph:"X" ~ts:e.Sim.at ~addr:e.Sim.e_dst
             [ ("dur", Json.Int 1); ("cat", Json.Str "msg"); seq_arg ])
      | Sim.Ev_loss ->
        instant ~name:(Printf.sprintf "lost: %s" name) ~ts:e.Sim.at
          ~addr:e.Sim.e_src [ seq_arg ]
      | Sim.Ev_to_crashed ->
        instant ~name:(Printf.sprintf "to crashed: %s" name) ~ts:e.Sim.at
          ~addr:e.Sim.e_dst [ seq_arg ]
      | Sim.Ev_expire ->
        instant ~name:(Printf.sprintf "expired: %s" name) ~ts:e.Sim.at
          ~addr:e.Sim.e_dst [ seq_arg ]
      | Sim.Ev_timeout ->
        instant ~name:"timeout" ~ts:e.Sim.at ~addr:e.Sim.e_dst [])
    (Sim.events env);
  let metadata =
    Hashtbl.fold (fun _ addr acc -> addr :: acc) tracks []
    |> List.sort compare
    |> List.concat_map (fun addr ->
           [
             common ~name:"process_name" ~ph:"M" ~ts:0 ~addr
               [
                 ( "args",
                   Json.Obj
                     [
                       ( "name",
                         Json.Str
                           (match addr with
                           | Sim.Client _ -> "clients"
                           | Sim.Replica _ -> "replicas") );
                     ] );
               ];
             common ~name:"thread_name" ~ph:"M" ~ts:0 ~addr
               [ ("args", Json.Obj [ ("name", Json.Str (addr_label addr)) ]) ];
           ])
  in
  let causal_events =
    match causal with
    | None -> []
    | Some c ->
      (* Spans live on the client tracks (pid 0, tid = client id), the
         same coordinates as the message flow starts, so the merged file
         shows each quorum read as a span tree with arrows leaving it. *)
      Causal.to_events ~pid:0 c
  in
  Json.Arr (metadata @ causal_events @ List.rev !events)

let export ~path ?pp ?causal env =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel ~minify:false oc (of_env ?pp ?causal env))

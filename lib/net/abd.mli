(** ABD-style emulation of SWMR atomic registers over {!Sim}.

    Attiya–Bar-Noy–Dolev: each register is replicated with a timestamp
    at all [n] replicas; a {e write} picks a fresh timestamp and
    installs the value at a quorum (one round); a {e read} queries a
    quorum, adopts the maximum-timestamp value, and {e writes it back}
    to a quorum before returning (two rounds).  With majority quorums
    any two quorums intersect, which — together with the write-back —
    makes every register atomic (linearizable) despite message
    reordering, loss and up to [f < n/2] replica crashes.  Single
    writer per register means no timestamp arbitration is needed: the
    writer's private counter is the timestamp order.

    Message complexity on a fault-free network (after {!Sim.run}'s
    drain): a write transmits exactly [2n] messages ([n] requests +
    [n] acks), a read exactly [4n] — the bound bench section E16
    checks.

    The point of the module is {!memory}: the emulation presented as a
    {!Csim.Memory.t}, so [Composite.Anderson.create] and
    [Composite.Afek.create] run unchanged over message passing.

    {2 Reconfiguration}

    The quorum system is elastic: [create ?members] names the initial
    active member set (default: all replicas), and {!reconfigure}
    changes it online — replicas join or leave while reads and writes
    keep flowing.  During a transition every quorum phase must meet a
    quorum of {e both} the old and the new member set (joint quorums);
    the transition performs a state transfer (one joint-quorum read per
    register, whose write-back installs the freshest value at the
    incoming quorum) and then installs the new set, bumping the
    configuration {!epoch}.  Safety needs no message sealing: the
    simulator is cooperative, so phase completions and transition steps
    are totally ordered, and joint quorums cover every interleaving.
    Liveness degrades exactly like crashes beyond [f]: if a joint
    quorum is unreachable (e.g. the incoming set is mostly crashed),
    phases retransmit forever.  Per-epoch accounting is exposed by
    {!epochs}. *)

type Sim.payload +=
  | Read_req of { reg : int; rid : int }
  | Read_ack of { reg : int; rid : int; ts : int; v : exn }
  | Write_req of { reg : int; rid : int; ts : int; v : exn }
  | Write_ack of { reg : int; rid : int }

val payload_label : Sim.payload -> string
(** Short human label for timelines, e.g. ["wr?3@7"]. *)

type quorum =
  | Majority  (** [n/2 + 1] — the correct choice. *)
  | Fixed of int
      (** Acknowledgement threshold forced to a given size.  A
          non-majority value breaks the quorum-intersection argument
          and yields observable non-atomicity — kept as a negative
          control for the checkers. *)

type backoff = { base : int; cap : int; jitter : int }
(** Retransmission policy for quorum phases, counted in timeout events:
    wait [base] timeouts before the first retransmit, double the wait
    after each retransmit up to [cap], add a seeded uniform draw from
    [0..jitter] on top, and collapse back to [base] whenever an ack is
    accepted (progress). *)

val no_backoff : backoff
(** [{ base = 1; cap = 1; jitter = 0 }]: retransmit on every timeout —
    the default, and the legacy behavior pinned counterexample scripts
    were recorded under. *)

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable rounds : int;  (** quorum phases executed *)
  mutable retransmits : int;
  mutable retrans_suppressed : int;
      (** timeouts absorbed by the backoff window without retransmitting *)
  mutable backoff_peak : int;
      (** largest backoff window (in timeouts) reached by any phase *)
  mutable phase_wait_total : int;
      (** network-clock ticks spent waiting for quorums, summed *)
  mutable phase_wait_max : int;
}

type t

val create :
  ?quorum:quorum ->
  ?backoff:backoff ->
  ?retry_seed:int ->
  ?on_phase:(wait:int -> unit) ->
  ?causal:Obs.Causal.t ->
  ?members:int list ->
  Sim.env ->
  t
(** Installs the replica handler on [env] — including the lying
    branches for any {!Sim.byz_flavor} replicas the environment was
    created with; every individual lie is booked into the replica's
    {!Sim.byz_stat}.  [backoff] (default {!no_backoff}) governs phase
    retransmission; [retry_seed] (default [0]) seeds its private jitter
    PRNG, so retransmission timing replays deterministically.
    [on_phase] is called at the end of every completed quorum phase
    with its latency in network ticks (used to feed metrics
    histograms).

    [causal] enables causal tracing: every read/write opens an [Op]
    span (parented under the issuing client's innermost composite-level
    note span, if the same collector is fed as the harness's note
    sink), each quorum phase a [Phase] child, each replica request an
    async [Rpc] child closed by the accepted ack — and left visibly
    unclosed by a crashed/mute replica — with retransmissions as
    instant [retx] children and backoff windows as [Wait] spans.  The
    phase's [(trace, span)] is stamped on every packet it sends via
    {!Sim.set_context}, replies inherit it, and accepted acks record
    the reply's Lamport stamp — so the Chrome export can draw flow
    arrows from the message timeline into the span tree.  Tracing
    changes packet metadata only: scheduling, counters and results are
    bit-identical with and without it.

    [members] (default: all replicas of [env]) is the initial active
    member set — sorted, deduplicated, each in [0..n-1].  Non-member
    replicas stay live and answering but are never asked until a
    {!reconfigure} joins them.  [Fixed k] quorums must fit the member
    set ([k <= length members]) and apply to both sets of a joint
    quorum during transitions.

    @raise Invalid_argument on an empty or out-of-range member set. *)

val memory : t -> Csim.Memory.t
(** Registers whose [read]/[write] are ABD operations issued by the
    calling client process ({e must} run inside {!Sim.run}); [peek] is
    a ghost read of the freshest replica state, for observers only. *)

val quorum_size : t -> int
(** Quorum threshold over the {e current} member set (majority of
    members, or the [Fixed] override). *)

val stats : t -> stats

(** {2 Reconfiguration} *)

val reconfigure : t -> members:int list -> unit
(** Replace the active member set online.  Must be called from a client
    coroutine inside {!Sim.run} — the state transfer is made of
    ordinary quorum reads.  Arms joint quorums, transfers every
    allocated register to the incoming set, then installs the new
    membership and bumps {!epoch}.  Concurrent reads/writes by other
    clients stay atomic throughout.

    @raise Invalid_argument on an empty/out-of-range member set, a
    [Fixed] quorum larger than the new set, or a reconfiguration
    already in progress. *)

val epoch : t -> int
(** Configuration epoch: [0] at creation, incremented by each completed
    {!reconfigure}. *)

val members : t -> int list
(** The current active member set (sorted replica ids). *)

type epoch_info = {
  ei_epoch : int;
  ei_members : int list;  (** active set during this epoch *)
  ei_transferred : int;
      (** registers re-installed by the state transfer that opened this
          epoch ([0] for epoch 0) *)
  ei_reads : int;
  ei_writes : int;
  ei_rounds : int;
  ei_retransmits : int;
  ei_sent : int;  (** network transmissions attempted during the epoch *)
}

val epochs : t -> epoch_info list
(** Per-epoch operation and message accounting, oldest first; the last
    entry covers the still-open epoch up to now.  Deltas are computed
    from cumulative snapshots taken at each install, so each field sums
    over epochs to the cumulative total {e exactly} — transfer traffic
    is charged to the epoch being closed. *)

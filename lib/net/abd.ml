type Sim.payload +=
  | Read_req of { reg : int; rid : int }
  | Read_ack of { reg : int; rid : int; ts : int; v : exn }
  | Write_req of { reg : int; rid : int; ts : int; v : exn }
  | Write_ack of { reg : int; rid : int }

let payload_label = function
  | Read_req { reg; _ } -> Printf.sprintf "rd?%d" reg
  | Read_ack { reg; ts; _ } -> Printf.sprintf "rd!%d@%d" reg ts
  | Write_req { reg; ts; _ } -> Printf.sprintf "wr?%d@%d" reg ts
  | Write_ack { reg; _ } -> Printf.sprintf "wr!%d" reg
  | _ -> "msg"

type quorum = Majority | Fixed of int

type backoff = { base : int; cap : int; jitter : int }

(* Legacy behavior: retransmit on every timeout.  Exponential backoff
   is opt-in so that pinned counterexample scripts recorded before the
   knob existed keep replaying bit-identically. *)
let no_backoff = { base = 1; cap = 1; jitter = 0 }

(* Timestamp lead of a Forge_ts reply: far past anything an honest
   writer reaches, so the forged pair wins every max-timestamp vote. *)
let forge_lead = 1_000_000

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable rounds : int;
  mutable retransmits : int;
  mutable retrans_suppressed : int;
  mutable backoff_peak : int;
  mutable phase_wait_total : int;
  mutable phase_wait_max : int;
}

type t = {
  env : Sim.env;
  n : int;
  quorum : quorum;
  (* The active member set (sorted replica ids).  Reads and writes are
     quorum operations over the members only; the other replicas of the
     environment are passive — alive and answering, but never asked —
     until a {!reconfigure} joins them.  During a reconfiguration
     [trans] holds the incoming member set and every phase requires a
     quorum of BOTH sets (joint quorums): any operation completing
     during the transition is installed where both the old and the new
     configuration's quorums will find it. *)
  mutable members : int array;
  mutable trans : int array option;
  mutable cfg_epoch : int;
  stores : (int, int * exn) Hashtbl.t array;
      (* per replica: register id -> (timestamp, value) *)
  firsts : (int, int * exn) Hashtbl.t;
      (* register id -> initial (timestamp, value): the pair lying
         replicas serve as their maximally stale answer *)
  backoff : backoff;
  retry_prng : Csim.Schedule.Prng.t;
  mutable next_reg : int;
  mutable next_rid : int;
  stats : stats;
  on_phase : wait:int -> unit;
  causal : Obs.Causal.t option;
  (* Per epoch, newest first: (epoch, members, cumulative stats at the
     epoch's start, cumulative network sends at its start, registers
     state-transferred by the reconfiguration that opened it). *)
  mutable epoch_log : (int * int array * stats * int * int) list;
}

let snap_stats (st : stats) = { st with reads = st.reads }

let maj set = (Array.length set / 2) + 1

let quorum_of t set =
  match t.quorum with Majority -> maj set | Fixed k -> k

let quorum_size t = quorum_of t t.members
let stats t = t.stats
let epoch t = t.cfg_epoch
let members t = Array.to_list t.members

let check_members ~n ~quorum ~via raw =
  let ms = List.sort_uniq compare raw in
  if ms = [] then invalid_arg (Printf.sprintf "Net.Abd.%s: empty member set" via);
  List.iter
    (fun r ->
      if r < 0 || r >= n then
        invalid_arg
          (Printf.sprintf "Net.Abd.%s: member %d not a replica (0..%d)" via r
             (n - 1)))
    ms;
  (match quorum with
  | Majority -> ()
  | Fixed k ->
    if k < 1 || k > List.length ms then
      invalid_arg
        (Printf.sprintf "Net.Abd.%s: quorum %d not in 1..%d members" via k
           (List.length ms)));
  Array.of_list ms

let create ?(quorum = Majority) ?(backoff = no_backoff) ?(retry_seed = 0)
    ?(on_phase = fun ~wait:_ -> ()) ?causal ?members env =
  let n = Sim.replicas env in
  let members =
    match members with
    | None -> Array.init n (fun r -> r)
    | Some ms -> check_members ~n ~quorum ~via:"create" ms
  in
  if backoff.base < 1 || backoff.cap < backoff.base || backoff.jitter < 0 then
    invalid_arg "Net.Abd.create: backoff wants 1 <= base <= cap, jitter >= 0";
  let t =
    {
      env;
      n;
      quorum;
      members;
      trans = None;
      cfg_epoch = 0;
      stores = Array.init n (fun _ -> Hashtbl.create 16);
      firsts = Hashtbl.create 16;
      backoff;
      retry_prng = Csim.Schedule.Prng.make retry_seed;
      next_reg = 0;
      next_rid = 0;
      stats =
        {
          reads = 0;
          writes = 0;
          rounds = 0;
          retransmits = 0;
          retrans_suppressed = 0;
          backoff_peak = 0;
          phase_wait_total = 0;
          phase_wait_max = 0;
        };
      on_phase;
      causal;
      epoch_log = [];
    }
  in
  t.epoch_log <-
    [ (0, members, snap_stats t.stats, (Sim.totals env).Sim.sent, 0) ];
  (* Honest replica logic, shared by every flavor branch that does not
     override the given request. *)
  let honest_read store ~src ~reg ~rid =
    let ts, v = Hashtbl.find store reg in
    [ (src, Read_ack { reg; rid; ts; v }) ]
  in
  let honest_write store ~src ~reg ~rid ~ts ~v =
    (* Timestamp rule: adopt strictly newer values only. *)
    let ts0, _ = Hashtbl.find store reg in
    if ts > ts0 then Hashtbl.replace store reg (ts, v);
    [ (src, Write_ack { reg; rid }) ]
  in
  Sim.set_handler env (fun ~replica ~src payload ->
      let store = t.stores.(replica) in
      match Sim.byz_flavor env replica with
      | None -> (
        match payload with
        | Read_req { reg; rid } -> honest_read store ~src ~reg ~rid
        | Write_req { reg; rid; ts; v } ->
          honest_write store ~src ~reg ~rid ~ts ~v
        | _ -> [])
      | Some flavor -> (
        let st = Sim.byz_stat env replica in
        match flavor with
        | Sim.Mute ->
          (* Swallow every delivery: a silent Byzantine, observationally
             a crash but accounted as misbehavior. *)
          st.Sim.muted <- st.Sim.muted + 1;
          []
        | Sim.Forge_ts -> (
          match payload with
          | Read_req { reg; rid } ->
            (* Serve whatever stale pair it kept, with a forged
               far-future timestamp: honest readers adopt it, write it
               back, and the poison spreads. *)
            let ts, v = Hashtbl.find store reg in
            st.Sim.forged <- st.Sim.forged + 1;
            [ (src, Read_ack { reg; rid; ts = ts + forge_lead; v }) ]
          | Write_req { reg; rid; ts = _; v = _ } ->
            (* A forged ack: pretend to store, keep nothing. *)
            st.Sim.forged <- st.Sim.forged + 1;
            [ (src, Write_ack { reg; rid }) ]
          | _ -> [])
        | Sim.Stale_replies -> (
          match payload with
          | Read_req { reg; rid } ->
            (* Store honestly but always answer with the register's
               initial pair — a maximal timestamp regression. *)
            st.Sim.stale_served <- st.Sim.stale_served + 1;
            let ts, v = Hashtbl.find t.firsts reg in
            [ (src, Read_ack { reg; rid; ts; v }) ]
          | Write_req { reg; rid; ts; v } ->
            honest_write store ~src ~reg ~rid ~ts ~v
          | _ -> [])
        | Sim.Equivocate -> (
          match payload with
          | Read_req { reg; rid } ->
            if src land 1 = 0 then honest_read store ~src ~reg ~rid
            else begin
              (* Odd clients are shown the initial pair, even ones the
                 truth: different quorum faces for different readers. *)
              st.Sim.equivocations <- st.Sim.equivocations + 1;
              let ts, v = Hashtbl.find t.firsts reg in
              [ (src, Read_ack { reg; rid; ts; v }) ]
            end
          | Write_req { reg; rid; ts; v } ->
            honest_write store ~src ~reg ~rid ~ts ~v
          | _ -> [])));
  t

let fresh_rid t =
  let r = t.next_rid in
  t.next_rid <- r + 1;
  r

(* Causal bookkeeping around one phase: the phase span (child of the
   operation span), one async rpc span per replica request — closed by
   the accepted ack, left unclosed by a silent replica — instant retx
   child spans per retransmission, and a wait span per backoff window.
   All sends inside the phase are stamped with the phase's (trace, span)
   context via [Sim.set_context], so replies and retransmits alike carry
   the phase identity on the wire. *)
type probe = {
  c : Obs.Causal.t;
  client : int;
  ph : Obs.Causal.span;
  rpcs : Obs.Causal.span option array;
  mutable waiting : Obs.Causal.span option;  (* open backoff window *)
}

let probe_start t ~op ~name =
  match t.causal with
  | None -> None
  | Some c ->
    let client = Sim.self () in
    let ph =
      Obs.Causal.start c ?parent:op ~kind:Obs.Causal.Phase ~track:client
        ~at:(Sim.now t.env) name
    in
    Sim.set_context t.env ~client
      (Some { Sim.trace = ph.Obs.Causal.trace; span = ph.Obs.Causal.id });
    Some { c; client; ph; rpcs = Array.make t.n None; waiting = None }

let probe_sent t pr ~replica ~retx =
  Option.iter
    (fun p ->
      let at = Sim.now t.env in
      match p.rpcs.(replica) with
      | None ->
        p.rpcs.(replica) <-
          Some
            (Obs.Causal.start p.c ~parent:p.ph ~kind:Obs.Causal.Rpc
               ~track:p.client ~at
               (Printf.sprintf "rpc r%d" replica))
      | Some rpc ->
        if retx then begin
          (* An instant child span per retransmission to this replica. *)
          let s =
            Obs.Causal.start p.c ~parent:rpc ~kind:Obs.Causal.Rpc
              ~track:p.client ~at
              (Printf.sprintf "retx r%d" replica)
          in
          Obs.Causal.finish p.c ~at s
        end)
    pr

let probe_wait_begin t pr =
  Option.iter
    (fun p ->
      if p.waiting = None then
        p.waiting <-
          Some
            (Obs.Causal.start p.c ~parent:p.ph ~kind:Obs.Causal.Wait
               ~track:p.client ~at:(Sim.now t.env) "backoff"))
    pr

let probe_wait_end t pr =
  Option.iter
    (fun p ->
      Option.iter
        (fun w ->
          Obs.Causal.finish p.c ~at:(Sim.now t.env) w;
          p.waiting <- None)
        p.waiting)
    pr

let probe_acked t pr ~replica ~lamport =
  Option.iter
    (fun p ->
      Option.iter
        (fun rpc ->
          Obs.Causal.finish p.c ~at:(Sim.now t.env)
            ~args:[ ("ack_lamport", Obs.Json.Int lamport) ]
            rpc)
        p.rpcs.(replica))
    pr

let probe_finish t pr ~wait =
  Option.iter
    (fun p ->
      probe_wait_end t pr;
      (* Unacked rpc spans stay open on purpose: a crashed or mute
         replica's request is visibly unclosed in the export. *)
      Obs.Causal.finish p.c ~at:(Sim.now t.env)
        ~args:[ ("wait", Obs.Json.Int wait) ]
        p.ph;
      Sim.set_context t.env ~client:p.client None)
    pr

(* One quorum phase: broadcast [payload] to every current target not
   yet heard from, then consume deliveries until the quorum predicate
   holds (acks matched by [on_ack], which also learns which replica the
   ack came from); timeouts retransmit to the laggards under bounded
   exponential backoff — the delay (counted in timeout events) doubles
   up to [cap] plus seeded jitter, and resets to [base] whenever an ack
   is accepted.  Acks are counted per replica, so duplicates from
   retransmission are harmless.

   The target set and the quorum predicate are re-evaluated live on
   every loop iteration rather than captured at phase start.  That is
   the reconfiguration safety argument: the simulator is cooperative,
   so "this phase completed" and "a transition began" are totally
   ordered.  A phase that completes before the transition installs its
   value at a quorum of the old members, which the transfer's joint
   read then meets by old-quorum intersection; a phase still in flight
   when the transition begins picks up the joint predicate on its next
   iteration and must additionally meet a quorum of the incoming set —
   so either way the value is where the next configuration looks. *)
let phase t ?op ~name payload ~on_ack =
  t.stats.rounds <- t.stats.rounds + 1;
  let started = Sim.now t.env in
  let pr = probe_start t ~op ~name in
  let acked = Array.make t.n false in
  let count set =
    Array.fold_left (fun acc r -> if acked.(r) then acc + 1 else acc) 0 set
  in
  let quorum_met () =
    count t.members >= quorum_of t t.members
    && match t.trans with
       | None -> true
       | Some tr -> count tr >= quorum_of t tr
  in
  let send_round ~retx =
    let send_to r =
      if not acked.(r) then begin
        Sim.send r payload;
        probe_sent t pr ~replica:r ~retx
      end
    in
    Array.iter send_to t.members;
    Option.iter (Array.iter send_to) t.trans
  in
  send_round ~retx:false;
  let timeouts = ref 0 in
  let delay = ref t.backoff.base in
  let due = ref t.backoff.base in
  while not (quorum_met ()) do
    match Sim.recv () with
    | None ->
      incr timeouts;
      if !timeouts >= !due then begin
        t.stats.retransmits <- t.stats.retransmits + 1;
        probe_wait_end t pr;
        send_round ~retx:true;
        delay := min t.backoff.cap (!delay * 2);
        if !delay > t.stats.backoff_peak then
          t.stats.backoff_peak <- !delay;
        let j =
          if t.backoff.jitter > 0 then
            Csim.Schedule.Prng.int t.retry_prng (t.backoff.jitter + 1)
          else 0
        in
        due := !timeouts + !delay + j
      end
      else begin
        t.stats.retrans_suppressed <- t.stats.retrans_suppressed + 1;
        probe_wait_begin t pr
      end
    | Some pkt -> (
      match pkt.Sim.src with
      | Sim.Replica r when not acked.(r) ->
        if on_ack ~replica:r pkt.Sim.payload then begin
          acked.(r) <- true;
          probe_wait_end t pr;
          probe_acked t pr ~replica:r ~lamport:pkt.Sim.lamport;
          (* Progress: collapse the backoff window. *)
          delay := t.backoff.base;
          due := !timeouts
        end
      | _ -> ())
  done;
  let wait = Sim.now t.env - started in
  t.stats.phase_wait_total <- t.stats.phase_wait_total + wait;
  if wait > t.stats.phase_wait_max then t.stats.phase_wait_max <- wait;
  probe_finish t pr ~wait;
  t.on_phase ~wait

(* The operation-level span: parent of the phases.  [Causal.start]
   resolves its parent to the innermost composite-level note span of
   this client (a Scan/Update bracket), stitching the layers. *)
let op_start t name =
  match t.causal with
  | None -> None
  | Some c ->
    Some
      (Obs.Causal.start c ~kind:Obs.Causal.Op ~track:(Sim.self ())
         ~at:(Sim.now t.env) name)

let op_finish t op =
  match (t.causal, op) with
  | Some c, Some sp ->
    let client = sp.Obs.Causal.track in
    Obs.Causal.finish c ~at:(Sim.now t.env)
      ~args:[ ("lamport", Obs.Json.Int (Sim.lamport t.env (Sim.Client client))) ]
      sp
  | _ -> ()

let write_phase t ?op reg ~ts ~v =
  let rid = fresh_rid t in
  phase t ?op ~name:(Printf.sprintf "write reg%d" reg)
    (Write_req { reg; rid; ts; v })
    ~on_ack:(fun ~replica:_ -> function
      | Write_ack w -> w.rid = rid
      | _ -> false)

(* SWMR write: one round.  [wts] is the writer's private timestamp
   counter for this register. *)
let write t reg wts v =
  t.stats.writes <- t.stats.writes + 1;
  incr wts;
  let op = op_start t (Printf.sprintf "abd.write reg%d" reg) in
  write_phase t ?op reg ~ts:!wts ~v;
  op_finish t op

(* Read: query round picks the maximum-timestamp value a quorum knows,
   then a write-back round makes that value known to a quorum before
   returning — the step that makes reads atomic rather than merely
   regular (no new/old inversion between non-overlapping reads).
   Returns the adopted value together with the replica whose ack won,
   so the API boundary can name the offender on a shape mismatch. *)
let read t reg =
  t.stats.reads <- t.stats.reads + 1;
  let rid = fresh_rid t in
  let op = op_start t (Printf.sprintf "abd.read reg%d" reg) in
  let best_ts = ref (-1) in
  let best_v = ref None in
  let best_src = ref (-1) in
  phase t ?op ~name:(Printf.sprintf "query reg%d" reg)
    (Read_req { reg; rid })
    ~on_ack:(fun ~replica -> function
      | Read_ack a when a.rid = rid ->
        if a.ts > !best_ts then begin
          best_ts := a.ts;
          best_v := Some a.v;
          best_src := replica
        end;
        true
      | _ -> false);
  let ts = !best_ts in
  let v =
    match !best_v with
    | Some v -> v
    | None ->
      (* Unreachable: every store is seeded at register creation, so
         the first matching ack always carries ts >= 0 > -1. *)
      invalid_arg
        (Printf.sprintf "Net.Abd.read: register %d: quorum with no value"
           reg)
  in
  write_phase t ?op reg ~ts ~v;
  op_finish t op;
  (v, !best_src)

(* Online membership change.  Runs as an ordinary client coroutine
   inside [Sim.run]:

   1. Arm the transition: [trans <- Some new_members].  From this
      instant every phase — including ones already in flight — must
      meet a quorum of BOTH member sets (see [phase]).
   2. State transfer: one joint-quorum [read] per allocated register.
      The query meets a quorum of the old members, so by intersection
      it sees the freshest completed write; the read's write-back phase
      then installs that value at a quorum of the incoming set.
   3. Install: [members <- new_members], [trans <- None], epoch++, and
      an epoch-log entry snapshotting the cumulative counters so the
      per-epoch deltas of [epochs] stay exact.

   Transfer traffic is charged to the epoch being closed (the entry for
   the new epoch is pushed after the transfer completes).  Liveness,
   not safety, is the casualty when a joint quorum is unreachable —
   like a crash set beyond f, the phase retransmits forever. *)
let reconfigure t ~members:raw =
  if t.trans <> None then
    invalid_arg "Net.Abd.reconfigure: reconfiguration already in progress";
  let nm = check_members ~n:t.n ~quorum:t.quorum ~via:"reconfigure" raw in
  let op = op_start t (Printf.sprintf "abd.reconfigure e%d" (t.cfg_epoch + 1)) in
  t.trans <- Some nm;
  let transferred = ref 0 in
  for reg = 0 to t.next_reg - 1 do
    ignore (read t reg);
    incr transferred
  done;
  t.members <- nm;
  t.trans <- None;
  t.cfg_epoch <- t.cfg_epoch + 1;
  t.epoch_log <-
    (t.cfg_epoch, nm, snap_stats t.stats, (Sim.totals t.env).Sim.sent,
     !transferred)
    :: t.epoch_log;
  op_finish t op

type epoch_info = {
  ei_epoch : int;
  ei_members : int list;
  ei_transferred : int;
  ei_reads : int;
  ei_writes : int;
  ei_rounds : int;
  ei_retransmits : int;
  ei_sent : int;
}

(* Per-epoch deltas from the cumulative snapshots, oldest first.  The
   diffs telescope: summing any field over all epochs reproduces the
   cumulative total exactly — the accounting identity the reconfig
   tests assert. *)
let epochs t =
  let rec build (upper : stats) upper_sent acc = function
    | [] -> acc
    | (e, ms, (at : stats), at_sent, transferred) :: rest ->
      let info =
        {
          ei_epoch = e;
          ei_members = Array.to_list ms;
          ei_transferred = transferred;
          ei_reads = upper.reads - at.reads;
          ei_writes = upper.writes - at.writes;
          ei_rounds = upper.rounds - at.rounds;
          ei_retransmits = upper.retransmits - at.retransmits;
          ei_sent = upper_sent - at_sent;
        }
      in
      build at at_sent (info :: acc) rest
  in
  build (snap_stats t.stats) (Sim.totals t.env).Sim.sent [] t.epoch_log

(* Ghost read for [Memory.peek]: the freshest value any replica store
   holds, without network traffic.  Also returns the holding replica. *)
let peek t reg =
  let best = ref None in
  for r = 0 to t.n - 1 do
    match Hashtbl.find_opt t.stores.(r) reg with
    | Some (ts, v) -> (
      match !best with
      | Some (bts, _, _) when bts >= ts -> ()
      | _ -> best := Some (ts, v, r))
    | None -> ()
  done;
  match !best with Some (_, v, r) -> (v, r) | None -> assert false

(* A universal type via an extensible variant, so one monomorphic
   network message type can carry values of every register's type.
   [proj] is total: a payload built by a different register's [inj]
   (or forged by a Byzantine replica) projects to [None] instead of
   crashing mid-quorum — the caller owns the error report. *)
let embed (type a) () : (a -> exn) * (exn -> a option) =
  let module M = struct
    exception E of a
  end in
  ((fun x -> M.E x), function M.E x -> Some x | _ -> None)

let memory t =
  let make : type a. name:string -> bits:int -> a -> a Csim.Memory.cell =
   fun ~name ~bits:_ init ->
    let reg = t.next_reg in
    t.next_reg <- reg + 1;
    let inj, proj = embed () in
    (* Shape validation at the API boundary: a mismatched payload is a
       typed, catchable [Invalid_argument] naming the register and the
       replica that supplied the value — not a [failwith] deep in the
       quorum loop. *)
    let checked ~via (e, replica) =
      match proj e with
      | Some v -> v
      | None ->
        invalid_arg
          (Printf.sprintf
             "Net.Abd.%s: register %d (%s): value of unexpected type \
              from replica %d"
             via reg name replica)
    in
    let first = (0, inj init) in
    Hashtbl.replace t.firsts reg first;
    for r = 0 to t.n - 1 do
      Hashtbl.replace t.stores.(r) reg first
    done;
    let wts = ref 0 in
    {
      Csim.Memory.read = (fun () -> checked ~via:"read" (read t reg));
      write = (fun v -> write t reg wts (inj v));
      peek = (fun () -> checked ~via:"peek" (peek t reg));
    }
  in
  { Csim.Memory.make }

open Csim

(* Byzantine-linearizable SWMR atomic register from SWSR atomic
   registers of which up to [f] may lie arbitrarily — the construction
   of Kshemkalyani–Rai–Vaidya (arXiv 2405.19457), adapted to this
   repository's substrate.  The paper builds the register from two
   mechanisms and we keep both:

   - Vouching: a value counts only when f+1 independent sources agree
     on it, so f liars can never push a fabricated (value, timestamp)
     pair past a reader.  Here every single-writer/single-reader link
     is replicated over n = 2f+1 base cells; a link read collects all
     n and accepts the highest-timestamp pair supported by at least
     f+1 of them.  Correct cells of a link are written sequentially by
     one writer, so at any point they split between at most two
     adjacent pairs; with 2f+1 - f = f+1 correct cells the pigeonhole
     gives some correct pair the required support mid-write, and when
     no pair qualifies (more liars than the design point) the reader
     falls back to the freshest pair it ever validated — which keeps
     each link's reads monotone, i.e. atomic for its single reader.

   - Relay: readers announce the value they are about to return to
     every other reader over reader-to-reader links and adopt the
     freshest of the writer's post and all announcements (the
     Israeli–Li handshake this repo already uses for
     [Constructions.Atomic_mrsw_of_srsw]).  This is what upgrades the
     per-reader-monotone links to a register that is atomic across
     readers: no two non-overlapping reads can return new-then-old.

   Tolerance boundary: with a global adversary budget of at most f
   faulty base cells every link still has >= f+1 correct replicas, so
   the construction masks the faults exactly; at f+1 faults
   concentrated on one link, the liars' agreed-on pair reaches the
   vouching threshold (or starves the correct pair of it) and the
   regression becomes observable — which is what the byz campaign's
   flagged side demonstrates. *)

type 'a tagged = { ts : int; v : 'a }

type 'a link = {
  reps : 'a tagged Memory.cell array;  (* n = 2f + 1 base cells *)
  lf : int;
  mutable last : 'a tagged;  (* freshest validated pair (reader-private) *)
}

let mk_link (mem : Memory.t) ~name ~bits ~f init =
  let t0 = { ts = 0; v = init } in
  {
    reps =
      Array.init
        ((2 * f) + 1)
        (fun i ->
          mem.Memory.make ~name:(Printf.sprintf "%s.rep%d" name i) ~bits t0);
    lf = f;
    last = t0;
  }

let write_link l x = Array.iter (fun c -> c.Memory.write x) l.reps

(* Collect all replicas, vote, keep the link monotone.  Support is
   counted on structurally equal (ts, v) pairs: correct replicas of a
   link hold identical pairs because they are written with the same
   tagged value. *)
let read_link l =
  let seen = Array.map (fun c -> c.Memory.read ()) l.reps in
  let best = ref None in
  Array.iter
    (fun x ->
      let support =
        Array.fold_left (fun a y -> if y = x then a + 1 else a) 0 seen
      in
      if support >= l.lf + 1 then
        match !best with
        | Some b when b.ts >= x.ts -> ()
        | _ -> best := Some x)
    seen;
  (match !best with
  | Some x when x.ts > l.last.ts -> l.last <- x
  | _ -> ());
  l.last

let peek_link l =
  (* Ghost vote over [peek]s: never mutates [last], never an event. *)
  let seen = Array.map (fun c -> c.Memory.peek ()) l.reps in
  let best = ref None in
  Array.iter
    (fun x ->
      let support =
        Array.fold_left (fun a y -> if y = x then a + 1 else a) 0 seen
      in
      if support >= l.lf + 1 then
        match !best with
        | Some b when b.ts >= x.ts -> ()
        | _ -> best := Some x)
    seen;
  match !best with Some x when x.ts > l.last.ts -> x | _ -> l.last

type 'a t = {
  w2r : 'a link array;  (* writer -> reader j *)
  r2r : 'a link array array;  (* reader i -> reader j *)
  readers : int;
  f : int;
  mutable wseq : int;
}

let create (mem : Memory.t) ~name ~bits ~f ~readers init =
  if f < 0 then invalid_arg "Byzantine.create: f must be >= 0";
  if readers < 1 then invalid_arg "Byzantine.create: readers must be >= 1";
  let w2r =
    Array.init readers (fun j ->
        mk_link mem ~name:(Printf.sprintf "%s.w2r%d" name j) ~bits ~f init)
  in
  let r2r =
    Array.init readers (fun i ->
        Array.init readers (fun j ->
            mk_link mem
              ~name:(Printf.sprintf "%s.r%dr%d" name i j)
              ~bits ~f init))
  in
  { w2r; r2r; readers; f; wseq = 0 }

let write t v =
  t.wseq <- t.wseq + 1;
  let x = { ts = t.wseq; v } in
  for j = 0 to t.readers - 1 do
    write_link t.w2r.(j) x
  done

let read t ~reader =
  if reader < 0 || reader >= t.readers then
    invalid_arg "Byzantine.read: reader out of range";
  let best = ref (read_link t.w2r.(reader)) in
  for i = 0 to t.readers - 1 do
    if i <> reader then begin
      let x = read_link t.r2r.(i).(reader) in
      if x.ts > !best.ts then best := x
    end
  done;
  for i = 0 to t.readers - 1 do
    if i <> reader then write_link t.r2r.(reader).(i) !best
  done;
  !best.v

let ghost_peek t =
  let best = ref (peek_link t.w2r.(0)) in
  for j = 1 to t.readers - 1 do
    let x = peek_link t.w2r.(j) in
    if x.ts > !best.ts then best := x
  done;
  !best.v

(* Exact base-register and access accounting, for the space/time
   overhead bench (E18). *)
let replication ~f = (2 * f) + 1
let base_registers ~f ~readers = (readers + (readers * readers)) * replication ~f

let read_cost ~f ~readers =
  (* own post + (readers-1) announcements in, (readers-1) announcements
     out; every link access touches all 2f+1 replicas. *)
  replication ~f * ((2 * readers) - 1)

let write_cost ~f ~readers = replication ~f * readers

(* ------------------------------------------------------------------ *)
(* The construction as a Memory.t                                       *)
(* ------------------------------------------------------------------ *)

let memory ?self ~f ~readers (base : Memory.t) =
  let self =
    match self with
    | Some s -> s
    | None -> fun () -> (try Sim.self () with Sim.Not_in_simulation -> 0)
  in
  let make : type a. name:string -> bits:int -> a -> a Memory.cell =
   fun ~name ~bits init ->
    let r = create base ~name ~bits ~f ~readers init in
    {
      Memory.read = (fun () -> read r ~reader:(self ()));
      write = (fun v -> write r v);
      peek = (fun () -> ghost_peek r);
    }
  in
  { Memory.make }

(** Byzantine-linearizable SWMR atomic register from SWSR atomic base
    registers, up to [f] of which may be actively faulty — after
    Kshemkalyani–Rai–Vaidya (arXiv 2405.19457), adapted to this
    repository's substrate.

    The paper's two mechanisms are kept: {e vouching} (a value counts
    only with f+1 agreeing sources: every single-writer/single-reader
    link is replicated over 2f+1 base cells and a link read accepts the
    highest-timestamp pair supported by at least f+1 of them, falling
    back to the freshest previously-validated pair so each link stays
    monotone for its one reader) and {e relay} (readers announce what
    they are about to return over reader-to-reader links and adopt the
    freshest of post and announcements — the Israeli–Li handshake of
    [Constructions.Atomic_mrsw_of_srsw], which makes the register
    atomic {e across} readers).

    With at most [f] faulty base cells in any link the faults are
    masked exactly; [f + 1] faults concentrated on one link push the
    liars' agreed-on pair past the vouching threshold and the
    regression becomes observable — the boundary the byz campaign
    demonstrates from both sides.

    {!memory} presents the construction as a {!Csim.Memory.t}, so
    Anderson/Afek and the serving layer run over it unchanged —
    mirroring how [Net.Abd.memory] plugs the message-passing emulation
    into the same seam. *)

open Csim

type 'a t

val create :
  Memory.t -> name:string -> bits:int -> f:int -> readers:int -> 'a -> 'a t
(** Allocate the [(readers + readers²) · (2f+1)] base cells of one
    register from the given memory (named ["<name>.w2rJ.repK"] and
    ["<name>.rIrJ.repK"], so fault injections can target replica
    groups).  Raises [Invalid_argument] if [f < 0] or [readers < 1]. *)

val write : 'a t -> 'a -> unit
val read : 'a t -> reader:int -> 'a

val ghost_peek : 'a t -> 'a
(** Vote over [peek]s of the writer posts; no events, no state
    mutation — for observers and checkers only. *)

val replication : f:int -> int
(** Base cells per link: [2f + 1]. *)

val base_registers : f:int -> readers:int -> int
(** Base cells per constructed register. *)

val read_cost : f:int -> readers:int -> int
(** Exact base-register accesses per read: [(2f+1)(2·readers - 1)]. *)

val write_cost : f:int -> readers:int -> int
(** Exact base-register accesses per write: [(2f+1)·readers]. *)

val memory : ?self:(unit -> int) -> f:int -> readers:int -> Memory.t -> Memory.t
(** The construction as a memory: every cell [make] hands out is a
    Byzantine-tolerant register built from cells of the base memory.
    [self] names the reading process (the reader port used for the
    relay matrix) and defaults to {!Sim.self}, falling back to port [0]
    outside a simulation; [readers] must cover every process that will
    read. *)

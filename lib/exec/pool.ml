type span = {
  sp_worker : int;
  sp_label : string;
  sp_t0 : float;
  sp_t1 : float;
}

type recorder = { mutable rspans : span list; lock : Mutex.t }

let recorder () = { rspans = []; lock = Mutex.create () }

let record r s =
  Mutex.lock r.lock;
  r.rspans <- s :: r.rspans;
  Mutex.unlock r.lock

let spans r =
  Mutex.lock r.lock;
  let l = r.rspans in
  Mutex.unlock r.lock;
  List.sort
    (fun a b ->
      match Float.compare a.sp_t0 b.sp_t0 with
      | 0 -> compare a.sp_worker b.sp_worker
      | c -> c)
    l

let chrome_json r =
  let sp = spans r in
  let base =
    List.fold_left (fun acc s -> Float.min acc s.sp_t0) Float.infinity sp
  in
  let us t = Obs.Json.Float ((t -. base) *. 1e6) in
  let workers =
    List.sort_uniq compare (List.map (fun s -> s.sp_worker) sp)
  in
  let meta w =
    Obs.Json.Obj
      [
        ("ph", Obs.Json.Str "M");
        ("pid", Obs.Json.Int 0);
        ("tid", Obs.Json.Int w);
        ("name", Obs.Json.Str "thread_name");
        ("args", Obs.Json.Obj [ ("name", Obs.Json.Str (Printf.sprintf "worker %d" w)) ]);
      ]
  in
  let ev s =
    Obs.Json.Obj
      [
        ("ph", Obs.Json.Str "X");
        ("pid", Obs.Json.Int 0);
        ("tid", Obs.Json.Int s.sp_worker);
        ("name", Obs.Json.Str s.sp_label);
        ("ts", us s.sp_t0);
        ("dur", Obs.Json.Float ((s.sp_t1 -. s.sp_t0) *. 1e6));
      ]
  in
  Obs.Json.Arr (List.map meta workers @ List.map ev sp)

let export_chrome ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Obs.Json.to_channel ~minify:false oc (chrome_json r);
      output_char oc '\n')

let default_jobs () = Domain.recommended_domain_count ()

let map_workers ?jobs ?recorder:rec_ ?label ~worker tasks f =
  if tasks < 0 then invalid_arg "Exec.Pool: negative task count";
  (match jobs with
  | Some j when j < 1 -> invalid_arg "Exec.Pool: jobs must be >= 1"
  | _ -> ());
  let jobs =
    match jobs with None -> default_jobs () | Some j -> j
  in
  let jobs = max 1 (min jobs tasks) in
  let label =
    match label with Some f -> f | None -> fun i -> Printf.sprintf "task%d" i
  in
  let results = Array.make tasks None in
  let next = Atomic.make 0 in
  (* Each worker claims task indices from [next] one at a time until the
     range is drained; results land in their own slot, so no lock is
     needed on the way out. *)
  let worker_loop wid =
    let st = worker () in
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < tasks then begin
        (* Monotonic, not wall clock: a clock step during the task would
           otherwise yield negative durations in Chrome traces. *)
        let t0 = Obs.Mono.now_s () in
        let v = f st i in
        let t1 = Obs.Mono.now_s () in
        (match rec_ with
        | None -> ()
        | Some r ->
          record r { sp_worker = wid; sp_label = label i; sp_t0 = t0; sp_t1 = t1 });
        results.(i) <- Some v;
        go ()
      end
    in
    go ();
    st
  in
  let states =
    if jobs = 1 then [ worker_loop 0 ]
    else
      List.init jobs (fun wid -> Domain.spawn (fun () -> worker_loop wid))
      |> List.map Domain.join
  in
  (Array.map (function Some v -> v | None -> assert false) results, states)

let map ?jobs ?recorder ?label tasks f =
  fst
    (map_workers ?jobs ?recorder ?label
       ~worker:(fun () -> ())
       tasks
       (fun () i -> f i))

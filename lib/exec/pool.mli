(** A fixed-size domain pool for embarrassingly parallel verification
    work.

    Campaigns, chaos sweeps and bench sections all consist of many
    {e independent} seeded simulations: each schedule builds its own
    simulator environment, so the only shared state is the result
    aggregation.  This module farms a dense index range [0 .. tasks-1]
    over OCaml 5 domains with an atomic self-scheduling queue and
    returns the results {e keyed by task index}, which makes the
    combined output bit-identical regardless of the number of jobs or
    the runtime interleaving of workers: determinism lives in the
    indexing, not in the assignment of tasks to domains.

    Workers can carry private mutable state (typically an
    {!Obs.Metrics.t} registry) created once per worker via [~worker];
    the states are returned at the join for an order-insensitive merge
    (see [Obs.Metrics.merge]).

    The pool optionally records one span per task into a {!recorder},
    exportable as Chrome trace-event JSON with one track per worker —
    load it in ui.perfetto.dev to see the pool's occupancy.  Spans are
    timed with the monotonic clock ({!Obs.Mono}), so durations are
    non-negative by construction even across wall-clock steps; the
    absolute origin is unspecified and only differences matter (the
    Chrome export already rebases to the earliest span). *)

type span = {
  sp_worker : int;  (** worker (domain slot) that ran the task *)
  sp_label : string;  (** task label *)
  sp_t0 : float;  (** monotonic start, seconds (unspecified origin) *)
  sp_t1 : float;  (** monotonic end, seconds; [sp_t1 >= sp_t0] *)
}

type recorder
(** A thread-safe span collector shared by all workers of a run. *)

val recorder : unit -> recorder

val spans : recorder -> span list
(** All recorded spans, sorted by start time (ties by worker). *)

val chrome_json : recorder -> Obs.Json.t
(** The recorded spans as a Chrome trace-event JSON array: one ["X"]
    (complete) event per task on a per-worker track, timestamps in
    microseconds relative to the earliest span. *)

val export_chrome : path:string -> recorder -> unit
(** Write {!chrome_json} to [path]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map_workers :
  ?jobs:int ->
  ?recorder:recorder ->
  ?label:(int -> string) ->
  worker:(unit -> 'w) ->
  int ->
  ('w -> int -> 'a) ->
  'a array * 'w list
(** [map_workers ~jobs ~worker tasks f] runs [f state i] for every
    [i] in [0 .. tasks-1] on a pool of [min jobs tasks] domains (at
    least 1; [jobs] defaults to {!default_jobs}), where each worker
    first creates its private [state = worker ()].  Returns the results
    indexed by [i] and the worker states in worker order.  With
    [jobs = 1] (or [tasks <= 1]) everything runs inline on the calling
    domain — no domain is spawned.

    Tasks are claimed one at a time from an atomic counter, so the
    assignment of tasks to workers is nondeterministic — everything
    returned is not: results are positional and worker states must be
    merged commutatively.  If a task raises, the exception is re-raised
    at the join (remaining workers finish their queues first).

    [label] names each task's span in [recorder] (default
    ["task<i>"]).  Raises [Invalid_argument] if [jobs < 1] or
    [tasks < 0]. *)

val map : ?jobs:int -> ?recorder:recorder -> ?label:(int -> string) ->
  int -> (int -> 'a) -> 'a array
(** {!map_workers} without worker state. *)

(* composite-registers: command-line driver regenerating every
   experiment of the reproduction (see DESIGN.md section 5 and
   EXPERIMENTS.md). *)

open Cmdliner

let impl_conv =
  let parse s =
    match Workload.Campaign.impl_of_name s with
    | Some i -> Ok i
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown implementation %S (expected one of: %s)" s
             (String.concat ", "
                (List.map Workload.Campaign.impl_name
                   Workload.Campaign.all_impls))))
  in
  let print fmt i = Format.pp_print_string fmt (Workload.Campaign.impl_name i) in
  Arg.conv (parse, print)

(* Shared by the campaign-style subcommands. *)
let jobs_arg =
  Arg.(
    value
    & opt int (Exec.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains to shard runs over (default: the number of \
           recommended domains for this machine).  Results are \
           bit-identical for every value.")

(* Canonical flag spellings are shared across the campaign subcommands
   (--jobs, --seed, --schedules, --backend).  The superseded --seeds
   spelling no longer parses: it stays registered — hidden from the man
   page — only so that using it is a typed evaluation error naming the
   replacement, not an opaque unknown-option failure. *)
let schedules_term ~default ~doc =
  let canonical =
    Arg.(
      value
      & opt (some int) None
      & info [ "schedules" ] ~docv:"N" ~doc)
  in
  let retired =
    Arg.(
      value
      & opt (some int) None
      & info [ "seeds" ] ~docs:Manpage.s_none ~docv:"N"
          ~doc:"Retired spelling of $(b,--schedules); using it is an error.")
  in
  Term.term_result'
    Term.(
      const (fun c r ->
          match r with
          | Some (_ : int) ->
            Error "option '--seeds' was removed; use '--schedules' instead"
          | None -> Ok (Option.value c ~default))
      $ canonical $ retired)

let pool_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "pool-trace" ] ~docv:"FILE"
        ~doc:
          "Export per-worker task spans as Chrome trace-event JSON \
           (pool occupancy view), loadable in ui.perfetto.dev.")

let with_pool_trace pool_trace f =
  let recorder = Exec.Pool.recorder () in
  let r = f recorder in
  (match pool_trace with
  | None -> ()
  | Some path ->
    Exec.Pool.export_chrome ~path recorder;
    Printf.printf "wrote pool trace (%d task spans) to %s\n"
      (List.length (Exec.Pool.spans recorder))
      path);
  r

(* ------------------------------------------------------------------ *)
(* verify                                                               *)
(* ------------------------------------------------------------------ *)

(* Backends resolve through the named registry; net flags imply the net
   backend, so `verify --replicas 5 --crash 1` does what it says without
   an explicit --backend.  Unknown names die listing what is
   registered. *)
let resolve_backend backend replicas crash loss =
  let name =
    match backend with
    | Some n -> n
    | None ->
      if replicas <> None || crash > 0 || loss > 0.0 then "net" else "shm"
  in
  match Workload.Backend.find name with
  | Error msg ->
    prerr_endline msg;
    exit 2
  | Ok b ->
    if b.Workload.Backend.caps.Workload.Backend.messaging then
      (* Re-derive the descriptor so the CLI parameter overrides apply. *)
      Workload.Backend.net
        ~replicas:(Option.value replicas ~default:5)
        ~crash ~loss ()
    else b

let backend_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "backend" ] ~docv:"NAME"
        ~doc:
          "Register backend, by registry name: $(b,shm) (simulator cells, \
           seeded interleavings), $(b,net) (ABD quorum emulation over the \
           simulated message-passing network), $(b,byz) (the f-tolerant \
           Byzantine construction over simulator cells, with a budgeted \
           lying adversary on the base cells) or $(b,multicore) (Atomic.t \
           registers on real domains).  Giving any of \
           --replicas/--crash/--loss implies net.")

let replicas_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "replicas" ] ~docv:"N"
        ~doc:"Server replicas for the net backend (default 5).")

let crash_arg =
  Arg.(
    value & opt int 0
    & info [ "crash" ] ~docv:"F"
        ~doc:
          "Replicas that crash-stop mid-run (net backend); must keep a \
           majority alive (F < N/2).")

let loss_arg =
  Arg.(
    value & opt float 0.0
    & info [ "loss" ] ~docv:"P"
        ~doc:"Per-message loss probability in [0,1) (net backend).")

let verify impl backend replicas crash loss components readers writes scans
    schedules seed jobs pool_trace exhaustive =
  let backend = resolve_backend backend replicas crash loss in
  if exhaustive then begin
    (if backend.Workload.Backend.caps <> Workload.Backend.static_caps then begin
       prerr_endline
         "verify --exhaustive explores shared-memory interleavings only";
       exit 2
     end);
    Printf.printf
      "exhaustively exploring all interleavings: impl=%s C=%d R=%d writes=%d \
       scans=%d\n\
       %!"
      (Workload.Campaign.impl_name impl)
      components readers writes scans;
    let r =
      Workload.Campaign.exhaustive ~impl ~components ~readers
        ~writes_per_writer:writes ~scans_per_reader:scans ()
    in
    Printf.printf "schedules executed: %d (complete: %b)\n" r.ex_runs
      r.ex_exhaustive;
    if r.ex_flagged = 0 then print_endline "all schedules linearizable."
    else begin
      Printf.printf "VIOLATION FOUND:\n%s\n"
        (Option.value ~default:"" r.ex_first_failure);
      exit 1
    end
  end
  else begin
    let cfg =
      {
        Workload.Campaign.impl;
        backend;
        components;
        readers;
        writes_per_writer = writes;
        scans_per_reader = scans;
        schedules;
        base_seed = seed;
        check_generic = components * (writes + scans) <= 40;
      }
    in
    (* No [jobs] in the banner: the whole point of the sharded campaign
       is that its output is bit-identical at every job count. *)
    Printf.printf
      "randomized campaign: impl=%s backend=%s C=%d R=%d ops/proc=%d/%d\n%!"
      (Workload.Campaign.impl_name impl)
      (Workload.Backend.label backend)
      components readers writes scans;
    let r =
      with_pool_trace pool_trace (fun pool ->
          Workload.Campaign.run ~jobs ~pool cfg)
    in
    Format.printf "%a@." Workload.Campaign.pp_result r;
    (match r.example with
    | Some ex -> Format.printf "@.example violation:@.%s@." ex
    | None -> ());
    if
      r.flagged_runs > 0 || r.generic_failures > 0 || r.witness_failures > 0
      || r.disagreements > 0
    then exit 1
  end

let verify_cmd =
  let impl =
    Arg.(
      value
      & opt impl_conv Workload.Campaign.Impl_anderson
      & info [ "impl" ] ~doc:"Implementation to verify.")
  in
  let components =
    Arg.(value & opt int 3 & info [ "c"; "components" ] ~doc:"Components.")
  in
  let readers = Arg.(value & opt int 2 & info [ "r"; "readers" ] ~doc:"Readers.") in
  let writes =
    Arg.(value & opt int 3 & info [ "writes" ] ~doc:"Writes per writer.")
  in
  let scans =
    Arg.(value & opt int 3 & info [ "scans" ] ~doc:"Scans per reader.")
  in
  let schedules =
    Arg.(value & opt int 200 & info [ "schedules" ] ~doc:"Random schedules.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed.") in
  let exhaustive =
    Arg.(
      value & flag
      & info [ "exhaustive" ]
          ~doc:"Enumerate every interleaving instead of sampling.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check linearizability over many schedules (Shrinking Lemma + \
          generic oracle); experiment E6.")
    Term.(
      const verify $ impl $ backend_arg $ replicas_arg $ crash_arg $ loss_arg
      $ components $ readers $ writes $ scans $ schedules $ seed $ jobs_arg
      $ pool_trace_arg $ exhaustive)

(* ------------------------------------------------------------------ *)
(* complexity (E2/E3)                                                   *)
(* ------------------------------------------------------------------ *)

let complexity max_c readers =
  let t =
    Workload.Table.create
      ~header:
        [
          "C"; "TR measured"; "TR paper"; "TW0 measured"; "TW0 paper";
          "TW(C-1) measured"; "match";
        ]
  in
  let all_ok = ref true in
  for c = 1 to max_c do
    let tr_m = Workload.Meter.scan_cost Workload.Campaign.Impl_anderson ~c ~r:readers in
    let tr_p = Composite.Complexity.tr ~c in
    let tw_m =
      Workload.Meter.update_cost Workload.Campaign.Impl_anderson ~c ~r:readers
        ~writer:0
    in
    let tw_p = Composite.Complexity.tw0 ~c ~r:readers in
    let tw_last =
      Workload.Meter.update_cost Workload.Campaign.Impl_anderson ~c ~r:readers
        ~writer:(c - 1)
    in
    let ok = tr_m = tr_p && tw_m = tw_p in
    if not ok then all_ok := false;
    Workload.Table.add_row t
      [
        string_of_int c; string_of_int tr_m; string_of_int tr_p;
        string_of_int tw_m; string_of_int tw_p; string_of_int tw_last;
        Workload.Table.cell_bool ok;
      ]
  done;
  Printf.printf
    "E2/E3: register operations per Read / Write, measured vs the paper's \
     recurrences (R = %d)\n\n"
    readers;
  Workload.Table.print t;
  if not !all_ok then exit 1

let complexity_cmd =
  let max_c = Arg.(value & opt int 8 & info [ "max-c" ] ~doc:"Largest C.") in
  let readers = Arg.(value & opt int 3 & info [ "r"; "readers" ] ~doc:"Readers.") in
  Cmd.v
    (Cmd.info "complexity"
       ~doc:"Reproduce the time-complexity recurrences (experiments E2, E3).")
    Term.(const complexity $ max_c $ readers)

(* ------------------------------------------------------------------ *)
(* space (E4)                                                           *)
(* ------------------------------------------------------------------ *)

let space max_c bits readers =
  let t =
    Workload.Table.create
      ~header:
        [
          "C"; "registers"; "MRSW bits measured"; "MRSW bits paper";
          "SRSW bits (asymptotic)"; "match";
        ]
  in
  let all_ok = ref true in
  for c = 1 to max_c do
    let bits_m =
      Workload.Meter.space_bits Workload.Campaign.Impl_anderson ~c ~b:bits
        ~r:readers
    in
    let bits_p = Composite.Complexity.space_mrsw_bits ~c ~b:bits ~r:readers in
    let regs = Workload.Meter.space_registers Workload.Campaign.Impl_anderson ~c ~r:readers in
    let regs_p = Composite.Complexity.registers ~c ~r:readers in
    let ok = bits_m = bits_p && regs = regs_p in
    if not ok then all_ok := false;
    Workload.Table.add_row t
      [
        string_of_int c; string_of_int regs; string_of_int bits_m;
        string_of_int bits_p;
        string_of_int
          (Composite.Complexity.space_srsw_asymptotic ~c ~b:bits ~r:readers);
        Workload.Table.cell_bool ok;
      ]
  done;
  Printf.printf
    "E4: space accounting, measured vs the paper's recurrence (B = %d, R = \
     %d)\n\n"
    bits readers;
  Workload.Table.print t;
  if not !all_ok then exit 1

let space_cmd =
  let max_c = Arg.(value & opt int 8 & info [ "max-c" ] ~doc:"Largest C.") in
  let bits = Arg.(value & opt int 8 & info [ "b"; "bits" ] ~doc:"Bits per component.") in
  let readers = Arg.(value & opt int 3 & info [ "r"; "readers" ] ~doc:"Readers.") in
  Cmd.v
    (Cmd.info "space"
       ~doc:"Reproduce the space-complexity recurrence (experiment E4).")
    Term.(const space $ max_c $ bits $ readers)

(* ------------------------------------------------------------------ *)
(* compare (E5)                                                         *)
(* ------------------------------------------------------------------ *)

let compare_impls max_c readers =
  let t =
    Workload.Table.create
      ~header:
        [
          "C"; "anderson scan"; "afek scan"; "anderson update(0)";
          "afek update"; "winner (scan)";
        ]
  in
  for c = 1 to max_c do
    let a_scan = Workload.Meter.scan_cost Workload.Campaign.Impl_anderson ~c ~r:readers in
    let f_scan = Workload.Meter.scan_cost Workload.Campaign.Impl_afek ~c ~r:readers in
    let a_up =
      Workload.Meter.update_cost Workload.Campaign.Impl_anderson ~c ~r:readers ~writer:0
    in
    let f_up =
      Workload.Meter.update_cost Workload.Campaign.Impl_afek ~c ~r:readers ~writer:0
    in
    Workload.Table.add_row t
      [
        string_of_int c; string_of_int a_scan; string_of_int f_scan;
        string_of_int a_up; string_of_int f_up;
        (if a_scan <= f_scan then "anderson" else "afek");
      ]
  done;
  Printf.printf
    "E5: register operations per operation — recursive (exponential, \
     single-writer registers only) vs Afek et al. (polynomial); R = %d\n\n"
    readers;
  Workload.Table.print t

let compare_cmd =
  let max_c = Arg.(value & opt int 10 & info [ "max-c" ] ~doc:"Largest C.") in
  let readers = Arg.(value & opt int 3 & info [ "r"; "readers" ] ~doc:"Readers.") in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Anderson vs Afek et al. operation costs (experiment E5).")
    Term.(const compare_impls $ max_c $ readers)

(* ------------------------------------------------------------------ *)
(* scenario (E1)                                                        *)
(* ------------------------------------------------------------------ *)

let case_name = function
  | None -> "none"
  | Some Composite.Anderson.Case_snapshot_seq -> "snapshot (seq handshake)"
  | Some Composite.Anderson.Case_snapshot_wc -> "snapshot (wc = a.wc+2)"
  | Some Composite.Anderson.Case_ab -> "(a, b)"
  | Some Composite.Anderson.Case_cd -> "(c, d)"

let run_scenario show_trace name =
  let scenarios =
    [
      ("fig4a", Workload.Scenario.fig4a, Composite.Anderson.Case_snapshot_seq);
      ("fig4b", Workload.Scenario.fig4b, Composite.Anderson.Case_snapshot_wc);
      ("ab", Workload.Scenario.case_ab, Composite.Anderson.Case_ab);
      ("cd", Workload.Scenario.case_cd, Composite.Anderson.Case_cd);
    ]
  in
  let run_one (label, f, expected) =
    let o = f () in
    let ok = o.Workload.Scenario.case = Some expected in
    Printf.printf
      "%-6s branch taken: %-26s values=[%s] ids=[%s] linearizable=%b  %s\n"
      label
      (case_name o.Workload.Scenario.case)
      (String.concat "; "
         (Array.to_list (Array.map string_of_int o.Workload.Scenario.values)))
      (String.concat "; "
         (Array.to_list (Array.map string_of_int o.Workload.Scenario.ids)))
      o.Workload.Scenario.linearizable
      (if ok then "[as the paper predicts]" else "[UNEXPECTED BRANCH]");
    if show_trace then
      Printf.printf "\n%s\n" o.Workload.Scenario.timeline;
    ok
  in
  let selected =
    if name = "all" then scenarios
    else
      match List.filter (fun (l, _, _) -> l = name) scenarios with
      | [] ->
        Printf.eprintf "unknown scenario %S (fig4a|fig4b|ab|cd|all)\n" name;
        exit 2
      | l -> l
  in
  print_endline
    "E1: the paper's Figure 4 executions and Section 4.1 case analysis, \
     replayed:";
  let ok = List.for_all run_one selected in
  if not ok then exit 1

let scenario_cmd =
  let scenario_arg =
    Arg.(value & pos 0 string "all" & info [] ~docv:"NAME" ~doc:"fig4a|fig4b|ab|cd|all")
  in
  let show_trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Also print the schedule as a Figure-4-style timeline.")
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:"Replay the paper's Figure 4 executions (experiment E1).")
    Term.(const run_scenario $ show_trace $ scenario_arg)

(* ------------------------------------------------------------------ *)
(* starvation                                                           *)
(* ------------------------------------------------------------------ *)

let starvation () =
  let t =
    Workload.Table.create
      ~header:[ "writer ops"; "repeated-collect reader events"; "anderson reader events" ]
  in
  List.iter
    (fun n ->
      Workload.Table.add_row t
        [
          string_of_int n;
          string_of_int (Workload.Scenario.starvation_events ~writer_ops:n);
          string_of_int (Workload.Scenario.wait_free_events ~writer_ops:n);
        ])
    [ 1; 5; 10; 50; 100; 500 ];
  print_endline
    "wait-freedom: reader work under a writer storm (repeated double collect \
     starves; the construction is constant)";
  print_newline ();
  Workload.Table.print t

let starvation_cmd =
  Cmd.v
    (Cmd.info "starvation"
       ~doc:"Demonstrate wait-freedom vs reader starvation.")
    Term.(const starvation $ const ())

(* ------------------------------------------------------------------ *)
(* lemmas                                                               *)
(* ------------------------------------------------------------------ *)

let lemmas components readers schedules seed =
  Printf.printf
    "machine-checking the paper's proof lemmas on concrete runs (C=%d, R=%d, \
     %d schedules):\n\
     - Lemma 2: every Read has a state inside its window whose ghost \
     contents equal what it returned\n\
     - property (12): component ids are monotone across states\n\
     - Lemma 1: bounded Writer-0 progress without the sequence handshake\n\n\
     %!"
    components readers schedules;
  let r =
    Workload.Lemmas.run ~components ~readers ~schedules ~base_seed:seed ()
  in
  Format.printf "%a@." Workload.Lemmas.pp_report r;
  if
    r.Workload.Lemmas.lemma2_failures > 0
    || r.Workload.Lemmas.property12_failures > 0
    || r.Workload.Lemmas.lemma1_failures > 0
  then exit 1

let lemmas_cmd =
  let components =
    Arg.(value & opt int 3 & info [ "c"; "components" ] ~doc:"Components.")
  in
  let readers = Arg.(value & opt int 2 & info [ "r"; "readers" ] ~doc:"Readers.") in
  let schedules =
    Arg.(value & opt int 50 & info [ "schedules" ] ~doc:"Random schedules.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed.") in
  Cmd.v
    (Cmd.info "lemmas"
       ~doc:
         "Machine-check the paper's proof lemmas (Lemma 1, Lemma 2, property \
          (12)) on concrete runs.")
    Term.(const lemmas $ components $ readers $ schedules $ seed)

(* ------------------------------------------------------------------ *)
(* fullstack                                                            *)
(* ------------------------------------------------------------------ *)

let fullstack max_c =
  print_endline
    "E10: the composite register over MRSW registers constructed from SRSW \
     registers\n(SRSW operations per snapshot scan, solo process)";
  print_newline ();
  let t =
    Workload.Table.create
      ~header:[ "C"; "P=1"; "P=2"; "P=4"; "TR(C) (MRSW ops)" ]
  in
  let scan_cost ~c ~processes =
    let env = Csim.Sim.create ~trace:false () in
    let mem = Registers.Full_stack.memory env ~processes in
    let reg =
      Composite.Anderson.create mem ~readers:1 ~bits_per_value:16
        ~init:(Array.make c 0)
    in
    let t0 = Csim.Sim.now env in
    let (_ : Csim.Sim.stats) =
      Csim.Sim.run_solo env (fun () ->
          ignore (Composite.Anderson.scan_items reg ~reader:0))
    in
    Csim.Sim.now env - t0
  in
  for c = 1 to max_c do
    Workload.Table.add_row t
      [
        string_of_int c;
        string_of_int (scan_cost ~c ~processes:1);
        string_of_int (scan_cost ~c ~processes:2);
        string_of_int (scan_cost ~c ~processes:4);
        string_of_int (Composite.Complexity.tr ~c);
      ]
  done;
  Workload.Table.print t

(* ------------------------------------------------------------------ *)
(* trace                                                                *)
(* ------------------------------------------------------------------ *)

let trace_run impl components readers seed show_witness export_chrome =
  let open Csim in
  let env = Sim.create () in
  let mem = Memory.of_sim env in
  let init = Array.init components (fun k -> (k + 1) * 10) in
  (* Emit operation-span markers into the trace: invisible in the
     timeline rendering, reconstructed by the Chrome exporter. *)
  let note = Obs.Span.emitter env in
  let handle = Workload.Campaign.make_handle ~note impl mem ~readers ~init in
  let rec_ =
    Composite.Snapshot.record ~note ~clock:(fun () -> Sim.now env) ~initial:init
      handle
  in
  let writer k () =
    for s = 1 to 2 do
      rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 100) + s)
    done
  in
  let reader j () =
    for _ = 1 to 2 do
      ignore (rec_.Composite.Snapshot.rscan ~reader:j)
    done
  in
  let procs =
    Array.init (components + readers) (fun p ->
        if p < components then writer p else reader (p - components))
  in
  let (_ : Sim.stats) = Sim.run env ~policy:(Schedule.Random seed) procs in
  Printf.printf "one run of %s: C=%d R=%d seed=%d (2 ops per process)\n\n"
    (Workload.Campaign.impl_name impl)
    components readers seed;
  let label p =
    if p < components then Printf.sprintf "writer%d" p
    else Printf.sprintf "reader%d" (p - components)
  in
  print_string (Render.timeline ~proc_label:label (Sim.trace env));
  print_newline ();
  let h = Composite.Snapshot.history rec_ in
  Format.printf "%a@." (History.Snapshot_history.pp string_of_int) h;
  (match History.Shrinking.check ~equal:Int.equal h with
  | [] -> print_endline "shrinking conditions: all hold"
  | violations ->
    Printf.printf "shrinking violations (%d):\n" (List.length violations);
    List.iter
      (fun v -> Format.printf "  %a@." History.Shrinking.pp_violation v)
      violations);
  if show_witness then begin
    match History.Shrinking.witness ~equal:Int.equal h with
    | Error e -> Printf.printf "no witness: %s\n" e
    | Ok order ->
      print_endline "\nlinearization witness:";
      List.iteri
        (fun i op ->
          match op with
          | History.Shrinking.L_write w ->
            Printf.printf "  %2d. Write comp %d := %d%s\n" (i + 1)
              w.History.Snapshot_history.comp w.History.Snapshot_history.value
              (if w.History.Snapshot_history.id = 0 then " (initial)" else "")
          | History.Shrinking.L_read r ->
            Printf.printf "  %2d. Read -> [%s]\n" (i + 1)
              (String.concat "; "
                 (Array.to_list
                    (Array.map string_of_int r.History.Snapshot_history.values))))
        order
  end;
  match export_chrome with
  | None -> ()
  | Some path ->
    Obs.Chrome.export ~path ~proc_label:label (Sim.trace env);
    let spans = Obs.Span.of_trace (Sim.trace env) in
    Printf.printf
      "\nwrote Chrome trace-event JSON to %s (%d spans, max nesting %d) — \
       open in ui.perfetto.dev or chrome://tracing\n"
      path (List.length spans)
      (Obs.Span.max_depth spans)

let trace_cmd =
  let impl =
    Arg.(
      value
      & opt impl_conv Workload.Campaign.Impl_anderson
      & info [ "impl" ] ~doc:"Implementation to run.")
  in
  let components =
    Arg.(value & opt int 2 & info [ "c"; "components" ] ~doc:"Components.")
  in
  let readers = Arg.(value & opt int 1 & info [ "r"; "readers" ] ~doc:"Readers.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Schedule seed.") in
  let witness =
    Arg.(value & flag & info [ "witness" ] ~doc:"Also print a linearization witness.")
  in
  let export_chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "export-chrome" ] ~docv:"FILE"
          ~doc:
            "Also export the run as Chrome trace-event JSON (operation spans \
             + memory accesses), loadable in ui.perfetto.dev or \
             chrome://tracing.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one seeded schedule and dump its timeline, history, checker \
          verdict and (optionally) linearization witness.")
    Term.(
      const trace_run $ impl $ components $ readers $ seed $ witness
      $ export_chrome)

(* ------------------------------------------------------------------ *)
(* profile                                                              *)
(* ------------------------------------------------------------------ *)

let profile_run impl components readers writes scans seed json =
  let open Csim in
  let env = Sim.create () in
  let mem = Memory.of_sim env in
  let init = Array.init components (fun k -> (k + 1) * 10) in
  let note = Obs.Span.emitter env in
  let handle = Workload.Campaign.make_handle ~note impl mem ~readers ~init in
  let rec_ =
    Composite.Snapshot.record ~note ~clock:(fun () -> Sim.now env) ~initial:init
      handle
  in
  let writer k () =
    for s = 1 to writes do
      rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 1000) + s)
    done
  in
  let reader j () =
    for _ = 1 to scans do
      ignore (rec_.Composite.Snapshot.rscan ~reader:j)
    done
  in
  let procs =
    Array.init (components + readers) (fun p ->
        if p < components then writer p else reader (p - components))
  in
  let (_ : Sim.stats) = Sim.run env ~policy:(Schedule.Random seed) procs in
  let p = Obs.Profile.of_env env in
  Printf.printf
    "hot-cell contention profile: impl=%s C=%d R=%d ops/proc=%d/%d seed=%d\n\n"
    (Workload.Campaign.impl_name impl)
    components readers writes scans seed;
  Format.printf "%a@?" Obs.Profile.pp p;
  let spans = Obs.Span.of_trace (Sim.trace env) in
  Printf.printf "operation spans: %d reconstructed, max nesting depth: %d\n"
    (List.length spans)
    (Obs.Span.max_depth spans);
  match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Obs.Json.to_channel ~minify:false oc (Obs.Profile.to_json p);
        output_char oc '\n');
    Printf.printf "wrote profile JSON to %s\n" path

let profile_cmd =
  let impl =
    Arg.(
      value
      & opt impl_conv Workload.Campaign.Impl_anderson
      & info [ "impl" ] ~doc:"Implementation to profile.")
  in
  let components =
    Arg.(value & opt int 4 & info [ "c"; "components" ] ~doc:"Components.")
  in
  let readers = Arg.(value & opt int 2 & info [ "r"; "readers" ] ~doc:"Readers.") in
  let writes =
    Arg.(value & opt int 2 & info [ "writes" ] ~doc:"Writes per writer.")
  in
  let scans =
    Arg.(value & opt int 2 & info [ "scans" ] ~doc:"Scans per reader.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Schedule seed.") in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also dump the profile as JSON.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one traced schedule and print the hot-cell contention profile: \
          per-cell read/write counts ranked by traffic, per-process event \
          counts, and switch adjacency (experiment E14).")
    Term.(
      const profile_run $ impl $ components $ readers $ writes $ scans $ seed
      $ json)

(* ------------------------------------------------------------------ *)
(* mutants                                                              *)
(* ------------------------------------------------------------------ *)

let mutants max_runs =
  print_endline
    "ablation: hunting a violating schedule for each mutated construction \
     (experiment E12):";
  print_newline ();
  let any_unexpected = ref false in
  List.iter
    (fun m ->
      let v = Composite.Mutants.hunt ~max_runs m in
      Printf.printf "%-18s %s (after %d schedules)%s\n"
        (Composite.Mutants.name m)
        (if v.Composite.Mutants.caught then "violation found" else "survived")
        v.Composite.Mutants.schedules_tried
        (match v.Composite.Mutants.counterexample with
        | Some msg -> ":\n                   " ^ msg
        | None -> "");
      match m with
      | Composite.Mutants.None_ | Composite.Mutants.No_second_write ->
        if v.Composite.Mutants.caught then any_unexpected := true
      | _ -> if not v.Composite.Mutants.caught then any_unexpected := true)
    (Composite.Mutants.None_ :: Composite.Mutants.all);
  print_newline ();
  print_endline
    "expected: every mutant caught except the control and no-second-write\n\
     (whose statement-7 publication rides on the next statement 3 — a \
     freshness\noptimization, not a safety mechanism).";
  if !any_unexpected then exit 1

let mutants_cmd =
  let max_runs =
    Arg.(value & opt int 3000 & info [ "max-runs" ] ~doc:"Schedules per mutant.")
  in
  Cmd.v
    (Cmd.info "mutants"
       ~doc:"Ablation study: remove each mechanism of Figure 3 and hunt for \
             a violating schedule (experiment E12).")
    Term.(const mutants $ max_runs)

(* ------------------------------------------------------------------ *)
(* resilience                                                           *)
(* ------------------------------------------------------------------ *)

let resilience components readers max_crash_point seed =
  Printf.printf
    "halting-failure sweep: for every process and every crash point <= %d, \
     halt it mid-operation\nand verify the survivors finish and their \
     history stays linearizable (C=%d, R=%d):\n\n%!"
    max_crash_point components readers;
  let r =
    Workload.Resilience.run ~components ~readers ~max_crash_point ~seed ()
  in
  Format.printf "%a@." Workload.Resilience.pp_report r;
  if r.Workload.Resilience.blocked > 0 || r.Workload.Resilience.not_linearizable > 0
  then exit 1

let resilience_cmd =
  let components =
    Arg.(value & opt int 2 & info [ "c"; "components" ] ~doc:"Components.")
  in
  let readers = Arg.(value & opt int 2 & info [ "r"; "readers" ] ~doc:"Readers.") in
  let max_crash =
    Arg.(value & opt int 12 & info [ "max-crash-point" ] ~doc:"Largest crash point.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed.") in
  Cmd.v
    (Cmd.info "resilience"
       ~doc:
         "Halting-failure resilience sweep (the paper's Section 1 claim; \
          experiment E11).")
    Term.(const resilience $ components $ readers $ max_crash $ seed)

(* ------------------------------------------------------------------ *)
(* chaos                                                                *)
(* ------------------------------------------------------------------ *)

let chaos impls components readers writes scans seeds base_seed faults
    profile_names minimize_budget jobs pool_trace expect_clean expect_flagged
    replay =
  match replay with
  | Some script -> begin
    (* Re-execute a minimized counterexample emitted by a campaign. *)
    match Workload.Chaos.cx_of_string script with
    | Error msg ->
      Printf.eprintf "cannot parse replay script: %s\n" msg;
      exit 2
    | Ok cx ->
      let outcome =
        Workload.Chaos.replay cx.Workload.Chaos.cx_case
          ~script:cx.Workload.Chaos.cx_script
      in
      (match outcome with
      | Workload.Chaos.Passed ->
        print_endline "replay: passed (no violation reproduced)";
        exit 1
      | Workload.Chaos.Diverged msg ->
        Printf.printf "replay: script diverged (%s)\n" msg;
        exit 1
      | Workload.Chaos.Stuck_run msg ->
        Printf.printf "replay: reproduced a progress failure: %s\n" msg
      | Workload.Chaos.Flagged vs ->
        Printf.printf "replay: reproduced %d violation(s):\n" (List.length vs);
        List.iter
          (fun v -> Format.printf "  %a@." History.Shrinking.pp_violation v)
          vs)
  end
  | None ->
    let impls = if impls = [] then Workload.Campaign.all_impls else impls in
    let profiles =
      match faults with
      | _ :: _ ->
        (* Explicit fault specs build one ad-hoc faulty-memory profile. *)
        [ Workload.Chaos.profile "cli" ~injections:faults ]
      | [] ->
        let all = Workload.Chaos.default_profiles ~components ~readers in
        (match profile_names with
        | [] -> all
        | names ->
          List.filter
            (fun (p : Workload.Chaos.profile) -> List.mem p.label names)
            all)
    in
    if profiles = [] then begin
      Printf.eprintf "no profile matched (known: %s)\n"
        (String.concat ", "
           (List.map
              (fun (p : Workload.Chaos.profile) -> p.label)
              (Workload.Chaos.default_profiles ~components ~readers)));
      exit 2
    end;
    let cfg =
      {
        Workload.Chaos.default with
        impls;
        profiles;
        components;
        readers;
        writes_per_writer = writes;
        scans_per_reader = scans;
        seeds;
        base_seed;
        minimize_budget;
      }
    in
    Printf.printf
      "chaos campaign: %d impl(s) x %d profile(s) x %d seed(s), C=%d R=%d \
       ops/proc=%d/%d jobs=%d\n\n\
       %!"
      (List.length impls) (List.length profiles) seeds components readers
      writes scans jobs;
    let r =
      with_pool_trace pool_trace (fun pool ->
          Workload.Chaos.run ~jobs ~pool cfg)
    in
    Format.printf "%a@." Workload.Chaos.pp_report r;
    List.iter
      (fun (c : Workload.Chaos.cell) ->
        match c.counterexample with
        | Some cx -> Format.printf "@.%a@." Workload.Chaos.pp_counterexample cx
        | None -> ())
      r.cells;
    if expect_clean && (r.total_flagged > 0 || r.total_stuck > 0) then exit 1;
    if expect_flagged && r.total_flagged = 0 then exit 1

let fault_conv =
  let parse s =
    match Csim.Faults.injection_of_string s with
    | Ok i -> Ok i
    | Error msg -> Error (`Msg msg)
  in
  let print fmt i = Csim.Faults.pp_injection fmt i in
  Arg.conv (parse, print)

let chaos_cmd =
  let impls =
    Arg.(
      value & opt_all impl_conv []
      & info [ "impl" ] ~doc:"Implementation(s) to stress (default: all).")
  in
  let components =
    Arg.(value & opt int 2 & info [ "c"; "components" ] ~doc:"Components.")
  in
  let readers = Arg.(value & opt int 2 & info [ "r"; "readers" ] ~doc:"Readers.") in
  let writes =
    Arg.(value & opt int 2 & info [ "writes" ] ~doc:"Writes per writer.")
  in
  let scans =
    Arg.(value & opt int 2 & info [ "scans" ] ~doc:"Scans per reader.")
  in
  let seeds =
    schedules_term ~default:10
      ~doc:"Seeded schedules per (impl, profile) cell."
  in
  let base_seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed.") in
  let faults =
    Arg.(
      value & opt_all fault_conv []
      & info [ "fault" ]
          ~doc:
            "Ad-hoc fault injection (repeatable): KIND:ARG[@PREFIX] with KIND \
             in lost|stuck|stutter|corrupt|regular, e.g. lost:0.2 or \
             regular:2\\@Y.  Overrides --profile.")
  in
  let profiles =
    Arg.(
      value & opt_all string []
      & info [ "profile" ]
          ~doc:
            "Fault profile(s) from the default taxonomy (repeatable; default: \
             all).  See the report for the labels.")
  in
  let minimize_budget =
    Arg.(
      value & opt int 3000
      & info [ "minimize-budget" ]
          ~doc:"Replays the counterexample minimizer may spend (0 disables).")
  in
  let expect_clean =
    Arg.(
      value & flag
      & info [ "expect-clean" ]
          ~doc:"Exit nonzero if any run is flagged or stuck.")
  in
  let expect_flagged =
    Arg.(
      value & flag
      & info [ "expect-flagged" ]
          ~doc:"Exit nonzero if no run is flagged (negative-control mode).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ]
          ~doc:"Replay a minimized counterexample script verbatim and report.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Fault-injection campaigns: faulty base memory (lost/stuck/stuttered \
          writes, read corruption, regular-register weakening), process \
          crashes and stall/resume faults, adversarial starvation \
          scheduling; flagged runs are delta-debugged to a minimal \
          replayable counterexample.")
    Term.(
      const chaos $ impls $ components $ readers $ writes $ scans $ seeds
      $ base_seed $ faults $ profiles $ minimize_budget $ jobs_arg
      $ pool_trace_arg $ expect_clean $ expect_flagged $ replay)

(* ------------------------------------------------------------------ *)
(* net                                                                  *)
(* ------------------------------------------------------------------ *)

let net impls replicas crash loss broken_quorum byz components readers writes
    scans seeds base_seed profile_names minimize_budget timeline causal_trace
    jobs pool_trace expect_clean expect_flagged replay =
  match replay with
  | Some script -> begin
    match Workload.Netchaos.cx_of_string script with
    | Error msg ->
      Printf.eprintf "cannot parse replay script: %s\n" msg;
      exit 2
    | Ok cx ->
      let outcome =
        Workload.Netchaos.replay cx.Workload.Netchaos.cx_case
          ~script:cx.Workload.Netchaos.cx_script
      in
      (match outcome with
      | Workload.Chaos.Passed ->
        print_endline "replay: passed (no violation reproduced)";
        exit 1
      | Workload.Chaos.Diverged msg ->
        Printf.printf "replay: script diverged (%s)\n" msg;
        exit 1
      | Workload.Chaos.Stuck_run msg ->
        Printf.printf "replay: reproduced a progress failure: %s\n" msg
      | Workload.Chaos.Flagged vs ->
        Printf.printf "replay: reproduced %d violation(s):\n" (List.length vs);
        List.iter
          (fun v -> Format.printf "  %a@." History.Shrinking.pp_violation v)
          vs)
  end
  | None ->
    let impls =
      if impls = [] then
        [ Workload.Campaign.Impl_anderson; Workload.Campaign.Impl_afek ]
      else impls
    in
    let profiles =
      if crash > 0 || loss > 0.0 || broken_quorum || byz <> [] then
        (* Explicit knobs build one ad-hoc profile: the last [crash]
           replicas stop early, each message lost with prob [loss],
           the [--byz] replicas lie. *)
        [
          Workload.Netchaos.profile "cli" ~loss
            ~crashes:(List.init crash (fun j -> (replicas - 1 - j, 3 + j)))
            ~byz
            ?quorum:(if broken_quorum then Some 1 else None);
        ]
      else
        let all = Workload.Netchaos.default_profiles ~replicas in
        (match profile_names with
        | [] -> all
        | names ->
          List.filter
            (fun (p : Workload.Netchaos.profile) -> List.mem p.label names)
            all)
    in
    if profiles = [] then begin
      Printf.eprintf "no profile matched (known: %s)\n"
        (String.concat ", "
           (List.map
              (fun (p : Workload.Netchaos.profile) -> p.label)
              (Workload.Netchaos.default_profiles ~replicas)));
      exit 2
    end;
    let cfg =
      {
        Workload.Netchaos.default with
        impls;
        profiles;
        replicas;
        components;
        readers;
        writes_per_writer = writes;
        scans_per_reader = scans;
        seeds;
        base_seed;
        minimize_budget;
      }
    in
    (* No [jobs] in the banner: output is bit-identical at every job
       count, and the CI legs diff it. *)
    Printf.printf
      "net chaos campaign: %d impl(s) x %d profile(s) x %d seed(s), n=%d \
       replicas, C=%d R=%d ops/proc=%d/%d\n\n\
       %!"
      (List.length impls) (List.length profiles) seeds replicas components
      readers writes scans;
    let r =
      with_pool_trace pool_trace (fun pool ->
          Workload.Netchaos.run ~jobs ~pool cfg)
    in
    Format.printf "%a@." Workload.Netchaos.pp_report r;
    List.iter
      (fun (c : Workload.Netchaos.cell) ->
        match c.counterexample with
        | Some cx ->
          Format.printf "@.%a@." Workload.Netchaos.pp_counterexample cx
        | None -> ())
      r.cells;
    (* One representative logged run for either export: first impl,
       first profile, base seed. *)
    let rep_case () =
      {
        Workload.Netchaos.impl = List.hd impls;
        prof = List.hd profiles;
        replicas;
        components;
        readers;
        writes_per_writer = writes;
        scans_per_reader = scans;
        seed = base_seed;
      }
    in
    (match timeline with
    | None -> ()
    | Some path ->
      let tr =
        Workload.Netchaos.export_timeline ~pp:Net.Abd.payload_label
          (rep_case ()) ~path
      in
      Printf.printf "wrote message timeline (%d sent, %d delivered) to %s\n"
        tr.Workload.Netchaos.net.Net.Sim.sent
        tr.Workload.Netchaos.net.Net.Sim.delivered path);
    (match causal_trace with
    | None -> ()
    | Some path ->
      let tr, c =
        Workload.Netchaos.export_causal ~pp:Net.Abd.payload_label (rep_case ())
          ~path
      in
      Printf.printf
        "wrote merged causal trace (%d msgs, %d spans, %d unclosed, %d \
         mismatched) to %s\n"
        tr.Workload.Netchaos.net.Net.Sim.sent (Obs.Causal.span_count c)
        (Obs.Causal.unclosed_count c) (Obs.Causal.mismatched c) path);
    if expect_clean && (r.total_flagged > 0 || r.total_stuck > 0) then exit 1;
    if expect_flagged && r.total_flagged = 0 then exit 1

let net_cmd =
  let impls =
    Arg.(
      value & opt_all impl_conv []
      & info [ "impl" ]
          ~doc:"Implementation(s) to run over the network (default: \
                anderson, afek).")
  in
  let replicas =
    Arg.(
      value & opt int 3
      & info [ "replicas" ] ~docv:"N" ~doc:"Server replicas.")
  in
  let crash =
    Arg.(
      value & opt int 0
      & info [ "crash" ] ~docv:"F"
          ~doc:
            "Crash-stop the last F replicas mid-run (ad-hoc profile; must \
             keep a majority alive).")
  in
  let loss =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~docv:"P"
          ~doc:"Per-message loss probability in [0,1) (ad-hoc profile).")
  in
  let broken_quorum =
    Arg.(
      value & flag
      & info [ "broken-quorum" ]
          ~doc:
            "Negative control: force quorum size 1, voiding the ABD \
             intersection argument; the checkers must catch it.")
  in
  let byz =
    let byz_conv =
      let parse s =
        match String.index_opt s ':' with
        | None ->
          Error (`Msg "expected REPLICA:FLAVOR, e.g. 1:forge")
        | Some i ->
          let r = String.sub s 0 i
          and fl = String.sub s (i + 1) (String.length s - i - 1) in
          (match (int_of_string_opt r, Net.Sim.byz_flavor_of_string fl) with
          | Some r, Some fl -> Ok (r, fl)
          | None, _ -> Error (`Msg (Printf.sprintf "bad replica number %S" r))
          | _, None ->
            Error
              (`Msg
                (Printf.sprintf
                   "unknown flavor %S (forge|stale|equivocate|mute)" fl)))
      in
      let print fmt (r, fl) =
        Format.fprintf fmt "%d:%s" r (Net.Sim.byz_flavor_to_string fl)
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value & opt_all byz_conv []
      & info [ "byz" ] ~docv:"REPLICA:FLAVOR"
          ~doc:
            "Make a replica Byzantine instead of crash-stop (repeatable, \
             ad-hoc profile): FLAVOR is forge (acks without storing, leads \
             timestamps), stale (serves the initial value), equivocate \
             (answers honestly or stale by client parity) or mute.  The ABD \
             emulation makes no Byzantine claim, so expect flags.")
  in
  let components =
    Arg.(value & opt int 2 & info [ "c"; "components" ] ~doc:"Components.")
  in
  let readers = Arg.(value & opt int 2 & info [ "r"; "readers" ] ~doc:"Readers.") in
  let writes =
    Arg.(value & opt int 2 & info [ "writes" ] ~doc:"Writes per writer.")
  in
  let scans =
    Arg.(value & opt int 2 & info [ "scans" ] ~doc:"Scans per reader.")
  in
  let seeds =
    schedules_term ~default:10
      ~doc:"Seeded schedules per (impl, profile) cell."
  in
  let base_seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed.") in
  let profiles =
    Arg.(
      value & opt_all string []
      & info [ "profile" ]
          ~doc:
            "Network fault profile(s) from the default taxonomy (repeatable; \
             default: all).  Overridden by --crash/--loss/--broken-quorum.")
  in
  let minimize_budget =
    Arg.(
      value & opt int 3000
      & info [ "minimize-budget" ]
          ~doc:"Replays the counterexample minimizer may spend (0 disables).")
  in
  let timeline =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline" ] ~docv:"FILE"
          ~doc:
            "Export one run's message timeline (sends, deliveries, drops, \
             timeouts, per-endpoint tracks) as Chrome trace-event JSON.")
  in
  let causal_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "causal-trace" ] ~docv:"FILE"
          ~doc:
            "Export one run's merged causal trace as Chrome trace-event \
             JSON: span trees for every composite Scan/Update, ABD op, \
             quorum phase and per-replica rpc, plus the message timeline \
             with flow arrows joining sends to deliveries.")
  in
  let expect_clean =
    Arg.(
      value & flag
      & info [ "expect-clean" ]
          ~doc:"Exit nonzero if any run is flagged or stuck.")
  in
  let expect_flagged =
    Arg.(
      value & flag
      & info [ "expect-flagged" ]
          ~doc:"Exit nonzero if no run is flagged (negative-control mode).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ]
          ~doc:"Replay a minimized counterexample script verbatim and report.")
  in
  Cmd.v
    (Cmd.info "net"
       ~doc:
         "Run the composite constructions over the message-passing backend \
          (ABD quorum emulation on a simulated crash-prone network) under \
          message loss, reordering, replica crashes and Byzantine replicas; \
          flagged runs are delta-debugged over the message schedule to a \
          minimal replayable counterexample.")
    Term.(
      const net $ impls $ replicas $ crash $ loss $ broken_quorum $ byz
      $ components $ readers $ writes $ scans $ seeds $ base_seed $ profiles
      $ minimize_budget $ timeline $ causal_trace $ jobs_arg $ pool_trace_arg
      $ expect_clean $ expect_flagged $ replay)

(* ------------------------------------------------------------------ *)
(* byz                                                                  *)
(* ------------------------------------------------------------------ *)

let byz_chaos impls components readers writes scans seeds base_seed faults
    tolerance unprotected profile_names minimize_budget jobs pool_trace
    expect_clean expect_flagged replay =
  match replay with
  | Some script -> begin
    match Workload.Byzchaos.cx_of_string script with
    | Error msg ->
      Printf.eprintf "cannot parse replay script: %s\n" msg;
      exit 2
    | Ok cx ->
      let outcome =
        Workload.Byzchaos.replay cx.Workload.Byzchaos.cx_case
          ~script:cx.Workload.Byzchaos.cx_script
      in
      (match outcome with
      | Workload.Chaos.Passed ->
        print_endline "replay: passed (no violation reproduced)";
        exit 1
      | Workload.Chaos.Diverged msg ->
        Printf.printf "replay: script diverged (%s)\n" msg;
        exit 1
      | Workload.Chaos.Stuck_run msg ->
        Printf.printf "replay: reproduced a progress failure: %s\n" msg
      | Workload.Chaos.Flagged vs ->
        Printf.printf "replay: reproduced %d violation(s):\n" (List.length vs);
        List.iter
          (fun v -> Format.printf "  %a@." History.Shrinking.pp_violation v)
          vs)
  end
  | None ->
    let impls =
      if impls = [] then
        [ Workload.Campaign.Impl_anderson; Workload.Campaign.Impl_afek ]
      else impls
    in
    let profiles =
      match faults with
      | _ :: _ ->
        (* Explicit adversary specs build one ad-hoc profile; the
           expectation follows the expect flag so the boundary report
           stays meaningful. *)
        let protection =
          if unprotected then Workload.Byzchaos.Unprotected
          else Workload.Byzchaos.Tolerant tolerance
        in
        let expect =
          if expect_flagged then Workload.Byzchaos.Break
          else Workload.Byzchaos.Survive
        in
        [ Workload.Byzchaos.profile "cli" ~protection ~expect faults ]
      | [] ->
        let all = Workload.Byzchaos.default_profiles ~components ~readers in
        (match profile_names with
        | [] -> all
        | names ->
          List.filter
            (fun (p : Workload.Byzchaos.profile) -> List.mem p.label names)
            all)
    in
    if profiles = [] then begin
      Printf.eprintf "no profile matched (known: %s)\n"
        (String.concat ", "
           (List.map
              (fun (p : Workload.Byzchaos.profile) -> p.label)
              (Workload.Byzchaos.default_profiles ~components ~readers)));
      exit 2
    end;
    let cfg =
      {
        Workload.Byzchaos.default with
        impls;
        profiles;
        components;
        readers;
        writes_per_writer = writes;
        scans_per_reader = scans;
        seeds;
        base_seed;
        minimize_budget;
      }
    in
    (* No [jobs] in the banner: output is bit-identical at every job
       count, and the CI legs diff it. *)
    Printf.printf
      "byzantine campaign: %d impl(s) x %d profile(s) x %d seed(s), C=%d \
       R=%d ops/proc=%d/%d\n\n\
       %!"
      (List.length impls) (List.length profiles) seeds components readers
      writes scans;
    let r =
      with_pool_trace pool_trace (fun pool ->
          Workload.Byzchaos.run ~jobs ~pool cfg)
    in
    Format.printf "%a@." Workload.Byzchaos.pp_report r;
    List.iter
      (fun (c : Workload.Byzchaos.cell) ->
        match c.counterexample with
        | Some cx ->
          Format.printf "@.%a@." Workload.Byzchaos.pp_counterexample cx
        | None -> ())
      r.cells;
    if expect_clean && (r.total_flagged > 0 || r.total_stuck > 0) then exit 1;
    if expect_flagged && r.total_flagged = 0 then exit 1;
    if not r.boundary_holds then exit 1

let byz_cmd =
  let impls =
    Arg.(
      value & opt_all impl_conv []
      & info [ "impl" ]
          ~doc:"Implementation(s) to stress (default: anderson, afek).")
  in
  let components =
    Arg.(value & opt int 2 & info [ "c"; "components" ] ~doc:"Components.")
  in
  let readers = Arg.(value & opt int 2 & info [ "r"; "readers" ] ~doc:"Readers.") in
  let writes =
    Arg.(value & opt int 2 & info [ "writes" ] ~doc:"Writes per writer.")
  in
  let scans =
    Arg.(value & opt int 2 & info [ "scans" ] ~doc:"Scans per reader.")
  in
  let seeds =
    schedules_term ~default:6
      ~doc:"Seeded schedules per (impl, profile) cell."
  in
  let base_seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed.") in
  let faults =
    Arg.(
      value & opt_all fault_conv []
      & info [ "fault" ]
          ~doc:
            "Ad-hoc adversary (repeatable): KIND:ARG[@TARGET] with KIND in \
             lost|stuck|stutter|corrupt|regular|equivocate|regress|byz and \
             TARGET a name prefix, =NAME exact, or *SUB substring — e.g. \
             byz:2:1 (budget of 2 lying cells) or equivocate:1\\@*.rep0 \
             (replica 0 of every link).  Overrides --profile.")
  in
  let tolerance =
    Arg.(
      value & opt int 1
      & info [ "f" ] ~docv:"F"
          ~doc:
            "Tolerance of the Byzantine construction protecting the ad-hoc \
             profile: each register masks up to F lying base replicas.")
  in
  let unprotected =
    Arg.(
      value & flag
      & info [ "unprotected" ]
          ~doc:
            "Drop the Byzantine-tolerant layer from the ad-hoc profile: the \
             implementations read the faulty memory directly (negative \
             control; combine with --expect-flagged).")
  in
  let profiles =
    Arg.(
      value & opt_all string []
      & info [ "profile" ]
          ~doc:
            "Profile(s) from the default survive/break taxonomy (repeatable; \
             default: all).  Overridden by --fault.")
  in
  let minimize_budget =
    Arg.(
      value & opt int 1200
      & info [ "minimize-budget" ]
          ~doc:"Replays the counterexample minimizer may spend (0 disables).")
  in
  let expect_clean =
    Arg.(
      value & flag
      & info [ "expect-clean" ]
          ~doc:"Exit nonzero if any run is flagged or stuck.")
  in
  let expect_flagged =
    Arg.(
      value & flag
      & info [ "expect-flagged" ]
          ~doc:"Exit nonzero if no run is flagged (negative-control mode).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ]
          ~doc:"Replay a minimized counterexample script verbatim and report.")
  in
  Cmd.v
    (Cmd.info "byz"
       ~doc:
         "Byzantine survive/break campaigns: the composite constructions run \
          over the f-tolerant Byzantine register construction whose base \
          cells equivocate, regress timestamps and lie under a budget; \
          survive profiles (adversary within f) must stay clean, break \
          profiles (budget exceeded, or the unprotected stack) must be \
          caught and delta-debugged to a minimal replayable counterexample.  \
          Exits nonzero if any profile lands on the wrong side of the \
          tolerance boundary.")
    Term.(
      const byz_chaos $ impls $ components $ readers $ writes $ scans $ seeds
      $ base_seed $ faults $ tolerance $ unprotected $ profiles
      $ minimize_budget $ jobs_arg $ pool_trace_arg $ expect_clean
      $ expect_flagged $ replay)

(* ------------------------------------------------------------------ *)
(* serve (E17's correctness side)                                       *)
(* ------------------------------------------------------------------ *)

let outer_conv =
  let parse s =
    match Serve.outer_impl_of_name s with
    | Some o -> Ok o
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown outer implementation %S (anderson|afek)" s))
  in
  let print fmt o = Format.pp_print_string fmt (Serve.outer_impl_name o) in
  Arg.conv (parse, print)

let serve_run outer shard_counts components readers writes scans schedules
    jobs pool_trace no_validate no_cache no_combine expect_clean expect_flagged
    =
  let shard_counts = if shard_counts = [] then [ 1; 2; 4 ] else shard_counts in
  let shard_counts =
    List.sort_uniq compare
      (List.filter (fun s -> s >= 1 && s <= components) shard_counts)
  in
  if shard_counts = [] then begin
    Printf.eprintf "no requested shard count lies in 1..%d\n" components;
    exit 2
  end;
  let validate = not no_validate
  and cache = not no_cache
  and combine = not no_combine in
  (* No [jobs] in the banner: clean campaign output is bit-identical at
     every job count, and the CI legs diff it. *)
  Printf.printf
    "serve campaign: outer=%s C=%d R=%d ops/proc=%d/%d runs/shard-count=%d \
     validate=%b cache=%b combine=%b\n\n\
     %!"
    (Serve.outer_impl_name outer)
    components readers writes scans schedules validate cache combine;
  let t =
    Workload.Table.create
      ~header:
        [
          "S"; "runs"; "ops"; "flagged"; "oracle fails"; "acct fails";
          "publishes"; "coalesced"; "combined"; "hit%"; "stale";
        ]
  in
  let total_flagged = ref 0 and total_generic = ref 0 in
  let total_accounting = ref 0 in
  let example = ref None in
  with_pool_trace pool_trace (fun pool ->
      List.iter
        (fun shards ->
          let m = Obs.Metrics.create () in
          let cfg =
            {
              Workload.Serve_campaign.outer;
              shards;
              components;
              readers;
              writer_ops = writes;
              reader_ops = scans;
              runs = schedules;
              validate;
              cache;
              combine;
              check_generic = components * (writes + scans) <= 40;
            }
          in
          let r = Workload.Serve_campaign.run ~jobs ~pool ~metrics:m cfg in
          total_flagged := !total_flagged + r.flagged_runs;
          total_generic := !total_generic + r.generic_failures;
          total_accounting := !total_accounting + r.accounting_failures;
          if !example = None then example := r.example;
          let c name =
            Obs.Metrics.counter_value (Obs.Metrics.counter m name)
          in
          let hits = c "serve.cache.hit" in
          let misses = c "serve.cache.miss" in
          let stale = c "serve.cache.stale" in
          let cached_scans = hits + misses + stale in
          Workload.Table.add_row t
            [
              string_of_int shards;
              string_of_int r.runs;
              string_of_int r.ops_checked;
              string_of_int r.flagged_runs;
              string_of_int r.generic_failures;
              string_of_int r.accounting_failures;
              string_of_int (c "serve.publishes");
              string_of_int (c "serve.coalesced");
              string_of_int (c "serve.scan.combined");
              (if cached_scans = 0 then "-"
               else
                 Printf.sprintf "%.0f" (100. *. float hits /. float cached_scans));
              string_of_int stale;
            ])
        shard_counts);
  Workload.Table.print t;
  (match !example with
  | Some ex -> Format.printf "@.example violation:@.%s@." ex
  | None -> ());
  if
    expect_clean
    && (!total_flagged > 0 || !total_generic > 0 || !total_accounting > 0)
  then exit 1;
  if expect_flagged && !total_flagged = 0 then exit 1

let serve_cmd =
  let outer =
    Arg.(
      value
      & opt outer_conv Serve.Outer_afek
      & info [ "impl" ] ~docv:"anderson|afek"
          ~doc:"Construction for the outer register of shard views.")
  in
  let shard_counts =
    Arg.(
      value & opt_all int []
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Shard count to stress (repeatable, forming a matrix; default 1, \
             2, 4; counts above C are dropped).")
  in
  let components =
    Arg.(value & opt int 4 & info [ "c"; "components" ] ~doc:"Components.")
  in
  let readers = Arg.(value & opt int 2 & info [ "r"; "readers" ] ~doc:"Readers.") in
  let writes =
    Arg.(
      value & opt int 4
      & info [ "writes" ] ~doc:"Synchronous updates per writer domain.")
  in
  let scans =
    Arg.(value & opt int 4 & info [ "scans" ] ~doc:"Scans per reader domain.")
  in
  let schedules =
    Arg.(
      value & opt int 5
      & info [ "schedules" ]
          ~doc:"Service lifetimes to stress per shard count.")
  in
  let no_validate =
    Arg.(
      value & flag
      & info [ "no-validate" ]
          ~doc:
            "Disable cache freshness validation (the broken mutant readers \
             reuse caches blindly; the checkers must flag it).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Disable read caching (every scan is full).")
  in
  let no_combine =
    Arg.(
      value & flag
      & info [ "no-combine" ]
          ~doc:
            "Disable scan-sharing (every cache miss pays its own outer scan; \
             the pre-combining differential baseline).")
  in
  let expect_clean =
    Arg.(
      value & flag
      & info [ "expect-clean" ]
          ~doc:"Exit nonzero if any run is flagged by any checker.")
  in
  let expect_flagged =
    Arg.(
      value & flag
      & info [ "expect-flagged" ]
          ~doc:"Exit nonzero if no run is flagged (negative-control mode).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Stress the sharded serving layer (write-coalescing mailboxes, \
          validated read caching) on real domains across a shard-count \
          matrix, checking every recorded history with the Shrinking and \
          Wing-Gong checkers (experiment E17's correctness side).")
    Term.(
      const serve_run $ outer $ shard_counts $ components $ readers $ writes
      $ scans $ schedules $ jobs_arg $ pool_trace_arg $ no_validate $ no_cache
      $ no_combine $ expect_clean $ expect_flagged)

(* ------------------------------------------------------------------ *)
(* serve-net                                                            *)
(* ------------------------------------------------------------------ *)
(* reshard (elastic sharding under load)                                *)
(* ------------------------------------------------------------------ *)

let reshard_run outer shards steps components readers writes scans schedules
    jobs pool_trace mutant minimize_budget expect_clean expect_flagged =
  if expect_clean && expect_flagged then begin
    prerr_endline "--expect-clean and --expect-flagged are mutually exclusive";
    exit 2
  end;
  let steps = if steps = [] then [ 4; 1; 3 ] else steps in
  let cfg =
    {
      Workload.Reshard_campaign.outer;
      shards;
      schedule = steps;
      components;
      readers;
      writer_ops = writes;
      reader_ops = scans;
      runs = schedules;
      migrate = not mutant;
      check_generic = components * (writes + scans) <= 40;
      minimize_budget;
    }
  in
  Printf.printf
    "reshard campaign: outer=%s S=%d steps=%s C=%d R=%d ops/proc=%d/%d \
     runs=%d migrate=%b\n\n\
     %!"
    (Serve.outer_impl_name outer)
    shards
    (String.concat "->" (List.map string_of_int steps))
    components readers writes scans schedules (not mutant);
  let m = Obs.Metrics.create () in
  let r =
    with_pool_trace pool_trace (fun pool ->
        Workload.Reshard_campaign.run ~jobs ~pool ~metrics:m cfg)
  in
  Format.printf "%a@." Workload.Reshard_campaign.pp_result r;
  let c name = Obs.Metrics.counter_value (Obs.Metrics.counter m name) in
  Printf.printf "reshards: %d, publishes: %d, coalesced: %d, rerouted \
                 batch entries absorbed in carried work\n"
    (c "serve.reshards") (c "serve.publishes") (c "serve.coalesced");
  (match r.Workload.Reshard_campaign.example with
  | Some ex -> Format.printf "@.example violation:@.%s@." ex
  | None -> ());
  let failures =
    r.Workload.Reshard_campaign.flagged_runs
    + r.Workload.Reshard_campaign.generic_failures
    + r.Workload.Reshard_campaign.accounting_failures
  in
  if expect_clean && failures > 0 then exit 1;
  if expect_flagged && failures = 0 then exit 1

let reshard_cmd =
  let outer =
    Arg.(
      value
      & opt outer_conv Serve.Outer_afek
      & info [ "impl" ] ~docv:"anderson|afek"
          ~doc:"Construction for the outer register of shard views.")
  in
  let shards =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"S" ~doc:"Initial shard count.")
  in
  let steps =
    Arg.(
      value & opt_all int []
      & info [ "step" ] ~docv:"S"
          ~doc:
            "Reshard step: target shard count, repeatable, walked in order \
             by the reconfigurer while load runs (default 4, 1, 3; clamped \
             to 1..C).")
  in
  let components =
    Arg.(value & opt int 4 & info [ "c"; "components" ] ~doc:"Components.")
  in
  let readers = Arg.(value & opt int 2 & info [ "r"; "readers" ] ~doc:"Readers.") in
  let writes =
    Arg.(
      value & opt int 4
      & info [ "writes" ] ~doc:"Synchronous updates per writer domain.")
  in
  let scans =
    Arg.(value & opt int 4 & info [ "scans" ] ~doc:"Scans per reader domain.")
  in
  let schedules =
    Arg.(
      value & opt int 5
      & info [ "schedules" ] ~doc:"Service lifetimes to stress.")
  in
  let mutant =
    Arg.(
      value & flag
      & info [ "mutant" ]
          ~doc:
            "Publish-before-migrate mutant: each reshard publishes the new \
             shard map with the previous epoch's boundary snapshot, so \
             acknowledged writes vanish at the switch (negative control; \
             combine with --expect-flagged).")
  in
  let minimize_budget =
    Arg.(
      value & opt int 40
      & info [ "minimize-budget" ]
          ~doc:
            "Lifetimes the reshard-schedule minimizer may spend shrinking a \
             failing step list (0 disables).")
  in
  let expect_clean =
    Arg.(
      value & flag
      & info [ "expect-clean" ]
          ~doc:
            "Exit nonzero if any run is flagged by any checker or breaks \
             the per-epoch accounting identities.")
  in
  let expect_flagged =
    Arg.(
      value & flag
      & info [ "expect-flagged" ]
          ~doc:"Exit nonzero if no run fails (negative-control mode).")
  in
  Cmd.v
    (Cmd.info "reshard"
       ~doc:
         "Stress live resharding: writer/reader domains hammer the sharded \
          serving layer while a reconfigurer walks a schedule of shard \
          counts through online epoch switches; every history is checked by \
          the Shrinking and Wing-Gong checkers and the per-epoch counter \
          identities must close exactly (experiment E22's correctness side).")
    Term.(
      const reshard_run $ outer $ shards $ steps $ components $ readers
      $ writes $ scans $ schedules $ jobs_arg $ pool_trace_arg $ mutant
      $ minimize_budget $ expect_clean $ expect_flagged)

(* ------------------------------------------------------------------ *)

(* One process, real sockets: start the TCP edge on an ephemeral
   loopback port over the chosen backend, drive it with the open- or
   closed-loop generator, then shut down gracefully and grade what the
   histograms and the accounting identities say.  This is experiment
   E21's correctness/smoke side; the throughput x latency matrix lives
   in the bench binary. *)
let serve_net_run backend_name shards reshard_to components workers conns
    clients ops rate write_ratio post_ratio zipf seed domains expect_clean =
  let components = max 1 components in
  let init = Array.init components (fun k -> (k + 1) * 10) in
  let backend =
    if backend_name = "serve" then
      let max_shards = List.fold_left max shards reshard_to in
      Edge.Backend.of_serve ~max_shards ~shards ~workers ~init ()
    else
      match Workload.Backend.find backend_name with
      | Error msg ->
        prerr_endline msg;
        prerr_endline "(or \"serve\" for the sharded serving layer)";
        exit 2
      | Ok b -> Workload.Edge_backends.of_registry ~seed ~workers ~init b
  in
  let server =
    Edge.Server.start
      ~config:{ Edge.Server.workers; backlog = 64; grace = 1.0 }
      backend
  in
  let arrival =
    if rate > 0.0 then Workload.Loadgen.Open_loop rate
    else Workload.Loadgen.Closed_loop
  in
  let cfg =
    {
      Workload.Loadgen.connections = conns;
      clients = max clients conns;
      ops;
      arrival;
      write_ratio;
      post_ratio;
      zipf_theta = zipf;
      seed;
      domains;
    }
  in
  let m = Obs.Metrics.create () in
  Printf.printf
    "serve-net: backend=%s components=%d workers=%d conns=%d clients=%d \
     ops=%d %s zipf=%.2f seed=%d\n\
     %!"
    backend.Edge.Backend.label components workers conns cfg.clients ops
    (match arrival with
    | Workload.Loadgen.Open_loop r -> Printf.sprintf "open-loop@%.0f/s" r
    | Workload.Loadgen.Closed_loop -> "closed-loop")
    zipf seed;
  (* Mid-load online reconfigurations, issued over the wire like any
     other client: wait for the first ops to land, then walk the
     requested shard counts while the generator keeps the edge busy. *)
  let reshard_errors = Atomic.make 0 in
  let resharder =
    if reshard_to = [] then None
    else
      Some
        (Domain.spawn (fun () ->
             let busy () =
               let st = Edge.Server.stats server in
               st.Edge.Server.writes + st.Edge.Server.posts
               + st.Edge.Server.scans
               > 0
             in
             let deadline = Unix.gettimeofday () +. 5.0 in
             while (not (busy ())) && Unix.gettimeofday () < deadline do
               Unix.sleepf 0.01
             done;
             let c = Edge.Client.connect ~port:(Edge.Server.port server) () in
             Fun.protect
               ~finally:(fun () -> Edge.Client.close c)
               (fun () ->
                 List.iter
                   (fun s ->
                     (match Edge.Client.reshard c ~shards:s with
                     | Ok epoch ->
                       Printf.printf "reshard -> S=%d (epoch %d)\n%!" s epoch
                     | Error msg ->
                       Atomic.incr reshard_errors;
                       Printf.printf "reshard -> S=%d FAILED: %s\n%!" s msg);
                     Unix.sleepf 0.02)
                   reshard_to)))
  in
  let rep =
    Workload.Loadgen.run ~metrics:m ~port:(Edge.Server.port server) ~components
      cfg
  in
  Option.iter Domain.join resharder;
  let identities = Edge.Server.shutdown server in
  Edge.Server.observe server m;
  let {
    Workload.Loadgen.ops_done;
    errors;
    elapsed_ns;
    throughput_per_sec;
    stalled_conns;
  } =
    rep
  in
  Printf.printf "ops: %d done, %d errors, %d stalled connections\n" ops_done
    errors stalled_conns;
  Printf.printf "elapsed: %.3f s, throughput: %.0f ops/s\n"
    (float_of_int elapsed_ns /. 1e9)
    throughput_per_sec;
  let t =
    Workload.Table.create
      ~header:[ "op"; "count"; "p50 us"; "p99 us"; "p999 us"; "max us" ]
  in
  List.iter
    (fun kind ->
      match Obs.Metrics.find_histogram m ("edge." ^ kind ^ ".latency_ns") with
      | None -> ()
      | Some h when Obs.Metrics.count h = 0 -> ()
      | Some h ->
        let us p = Printf.sprintf "%.0f" (float (Obs.Metrics.percentile h p) /. 1e3) in
        Workload.Table.add_row t
          [
            kind;
            string_of_int (Obs.Metrics.count h);
            us 50.;
            us 99.;
            us 99.9;
            Printf.sprintf "%.0f" (float (Obs.Metrics.hist_max h) /. 1e3);
          ])
    [ "write"; "post"; "scan" ];
  Workload.Table.print t;
  let {
    Edge.Server.accepted;
    disconnects;
    hellos = _;
    writes;
    posts;
    scans;
    reshards;
    protocol_errors;
    op_errors;
    fiber_errors;
  } =
    Edge.Server.stats server
  in
  Printf.printf
    "server: %d accepted, %d disconnects, ops %d/%d/%d (write/post/scan), \
     %d reshards, errors %d protocol %d op %d fiber\n"
    accepted disconnects writes posts scans reshards protocol_errors op_errors
    fiber_errors;
  (match backend.Edge.Backend.counters () with
  | [] -> ()
  | cs ->
    print_string "backend:";
    List.iter (fun (k, v) -> Printf.printf " %s=%d" k v) cs;
    print_newline ());
  (match identities with
  | Ok () -> print_endline "accounting identities: ok"
  | Error msg -> Printf.printf "accounting identities: BROKEN (%s)\n" msg);
  let edge_budgets =
    List.filter
      (fun b -> String.length b.Obs.Slo.op > 5 && String.sub b.Obs.Slo.op 0 5 = "edge/")
      Obs.Slo.default_budgets
  in
  Format.printf "@[<v>SLO budgets:@,%a@]@." Obs.Slo.pp
    (Obs.Slo.check ~budgets:edge_budgets m);
  let clean =
    errors = 0 && stalled_conns = 0 && protocol_errors = 0 && op_errors = 0
    && fiber_errors = 0
    && Atomic.get reshard_errors = 0
    && reshards = List.length reshard_to
    && ops_done = ops
    && match identities with Ok () -> true | Error _ -> false
  in
  if expect_clean && not clean then begin
    print_endline "serve-net: NOT CLEAN";
    exit 1
  end

let serve_net_cmd =
  let backend =
    Arg.(
      value & opt string "serve"
      & info [ "backend" ] ~docv:"NAME"
          ~doc:
            "What the edge serves: $(b,serve) (the sharded serving layer on \
             real domains), or a registry backend — $(b,multicore) (Afek \
             handle on real domains), $(b,shm)/$(b,net)/$(b,byz) (simulator \
             substrates, each op a single-process run under a global lock).")
  in
  let shards =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"S"
          ~doc:"Shard count for the serve backend (ignored otherwise).")
  in
  let reshard_to =
    Arg.(
      value & opt_all int []
      & info [ "reshard-to" ] ~docv:"S"
          ~doc:
            "Reshard the serve backend to $(docv) shards mid-load, over the \
             wire, without dropping connections; repeatable — each occurrence \
             is one online epoch switch, walked in order.")
  in
  let components =
    Arg.(value & opt int 8 & info [ "c"; "components" ] ~doc:"Components.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~doc:"Server worker domains (accept loops).")
  in
  let conns =
    Arg.(
      value & opt int 16
      & info [ "conns" ] ~docv:"N" ~doc:"Client socket connections.")
  in
  let clients =
    Arg.(
      value & opt int 256
      & info [ "clients" ] ~docv:"N"
          ~doc:"Logical clients multiplexed over the connections.")
  in
  let ops =
    Arg.(value & opt int 2000 & info [ "ops" ] ~doc:"Total operations.")
  in
  let rate =
    Arg.(
      value & opt float 20000.0
      & info [ "rate" ] ~docv:"OPS/S"
          ~doc:
            "Open-loop Poisson arrival rate in ops/second; 0 switches to \
             closed-loop (each connection fires as soon as its previous \
             response lands).")
  in
  let write_ratio =
    Arg.(
      value & opt float 0.3
      & info [ "write-ratio" ] ~doc:"Fraction of ops that write.")
  in
  let post_ratio =
    Arg.(
      value & opt float 0.5
      & info [ "post-ratio" ] ~doc:"Fraction of writes sent as async posts.")
  in
  let zipf =
    Arg.(
      value & opt float 0.9
      & info [ "zipf" ] ~docv:"THETA"
          ~doc:"Zipfian component skew; 0 = uniform.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Plan seed.") in
  let domains =
    Arg.(
      value & opt int 2
      & info [ "domains" ] ~doc:"Client domains driving the connections.")
  in
  let expect_clean =
    Arg.(
      value & flag
      & info [ "expect-clean" ]
          ~doc:
            "Exit nonzero unless every op completed without error, no \
             connection stalled, the server saw no protocol/op/fiber errors, \
             and the backend's accounting identities hold at quiescence.")
  in
  Cmd.v
    (Cmd.info "serve-net"
       ~doc:
         "Serve a composite-register backend over TCP (length-prefixed binary \
          frames, effect-based accept loops on a worker-domain pool) and \
          drive it with the open-/closed-loop load generator in the same \
          process: throughput, latency percentiles, SLO verdicts and the \
          accounting identities at graceful shutdown (experiment E21's smoke \
          side).")
    Term.(
      const serve_net_run $ backend $ shards $ reshard_to $ components
      $ workers $ conns $ clients $ ops $ rate $ write_ratio $ post_ratio
      $ zipf $ seed $ domains $ expect_clean)

let fullstack_cmd =
  let max_c = Arg.(value & opt int 6 & info [ "max-c" ] ~doc:"Largest C.") in
  Cmd.v
    (Cmd.info "fullstack"
       ~doc:
         "Cost of the snapshot when its MRSW registers are themselves \
          constructed from SRSW registers (experiment E10).")
    Term.(const fullstack $ max_c)

(* ------------------------------------------------------------------ *)
(* stat                                                                 *)
(* ------------------------------------------------------------------ *)

(* One-screen health snapshot of the whole stack: a traced shm run for
   the hot-cell profile and span health, a traced net run for the
   message counters and causal span accounting, and the SLO budget
   table graded over the latency histograms both probe runs book. *)
let stat seed =
  let m = Obs.Metrics.create () in
  Printf.printf "composite registers: status snapshot (seed %d)\n" seed;
  (* shm probe: one traced schedule, the E14 shape. *)
  let profile, shm_spans, shm_mismatched =
    let open Csim in
    let env = Sim.create () in
    let mem = Memory.of_sim env in
    let init = Array.init 4 (fun k -> (k + 1) * 10) in
    let note = Obs.Span.emitter env in
    let handle =
      Workload.Campaign.make_handle ~note Workload.Campaign.Impl_anderson mem
        ~readers:2 ~init
    in
    let rec_ =
      Composite.Snapshot.record ~note
        ~clock:(fun () -> Sim.now env)
        ~initial:init handle
    in
    let writer k () =
      for s = 1 to 2 do
        rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 1000) + s)
      done
    in
    let reader j () =
      for _ = 1 to 2 do
        ignore (rec_.Composite.Snapshot.rscan ~reader:j)
      done
    in
    let procs =
      Array.init 6 (fun p -> if p < 4 then writer p else reader (p - 4))
    in
    let (_ : Sim.stats) = Sim.run env ~policy:(Schedule.Random seed) procs in
    Workload.Campaign.observe_op_latencies m ~prefix:"campaign.shm"
      (Composite.Snapshot.history rec_);
    let spans = Obs.Span.of_trace ~metrics:m (Sim.trace env) in
    (Obs.Profile.of_env env, spans, Obs.Span.mismatch_count spans)
  in
  print_endline "\nshm probe (anderson, C=4 R=2, 2 ops/proc) — top hot cells:";
  Format.printf "%a@?" Obs.Profile.pp
    { profile with Obs.Profile.rows = Obs.Profile.top ~n:5 profile };
  Printf.printf "operation spans: %d reconstructed, %d mismatched end markers\n"
    (List.length shm_spans) shm_mismatched;
  (* net probe: one traced run over the ABD emulation, with a replica
     crash and message loss so the counters have something to show. *)
  let case =
    {
      Workload.Netchaos.impl = Workload.Campaign.Impl_anderson;
      prof =
        Workload.Netchaos.profile ~loss:0.05 ~crashes:[ (0, 40) ] "loss+crash";
      replicas = 3;
      components = 3;
      readers = 2;
      writes_per_writer = 3;
      scans_per_reader = 3;
      seed;
    }
  in
  let c = Obs.Causal.create () in
  let r = Workload.Netchaos.run_once ~metrics:m ~causal:c case in
  let s = r.Workload.Netchaos.net in
  print_endline "\nnet probe (abd, n=3, loss 5%, crash replica 0):";
  Printf.printf
    "  messages: %d sent, %d delivered, %d lost, %d to-crashed, %d timeouts\n"
    s.Net.Sim.sent s.Net.Sim.delivered s.Net.Sim.lost s.Net.Sim.to_crashed
    s.Net.Sim.timeouts;
  Printf.printf "  outcome: %s\n"
    (match r.Workload.Netchaos.outcome with
    | Workload.Chaos.Passed -> "clean"
    | Workload.Chaos.Flagged vs ->
      Printf.sprintf "FLAGGED (%d violations)" (List.length vs)
    | Workload.Chaos.Stuck_run msg -> "STUCK: " ^ msg
    | Workload.Chaos.Diverged msg -> "DIVERGED: " ^ msg);
  Printf.printf
    "  causal spans: %d collected, %d unclosed (crashed-replica rpcs), %d \
     mismatched\n"
    (Obs.Causal.span_count c)
    (Obs.Causal.unclosed_count c)
    (Obs.Causal.mismatched c);
  (* SLO verdicts over what the two probes booked; classes this
     snapshot does not exercise (byz, serve) show as "(no data)". *)
  Format.printf "@.SLO budgets (p999 per op class):@.%a@?" Obs.Slo.pp
    (Obs.Slo.check m)

let stat_cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~doc:"Schedule seed for both probe runs.")
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:
         "One-screen status snapshot: hot cells and span health of a traced \
          shared-memory run, message counters and causal span accounting of \
          a traced network run, and the SLO budget table over both probes' \
          latency histograms.")
    Term.(const stat $ seed)

(* ------------------------------------------------------------------ *)

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "composite-registers" ~version:"1.0.0"
      ~doc:
        "Wait-free atomic snapshots: a reproduction of Anderson's composite \
         registers (PODC 1990)."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            verify_cmd; complexity_cmd; space_cmd; compare_cmd; scenario_cmd;
            starvation_cmd; lemmas_cmd; fullstack_cmd; resilience_cmd;
            mutants_cmd; trace_cmd; chaos_cmd; net_cmd; byz_cmd; serve_cmd;
            reshard_cmd; serve_net_cmd; profile_cmd; stat_cmd;
          ]))
